//! # cbls-portfolio — restart schedules, strategy portfolios and adaptive
//! walk allocation
//!
//! The paper's parallel scheme launches `p` *identical* independent walks
//! and keeps the first finisher; its own analysis shows that the resulting
//! speedup is governed by the left tail of the per-walk runtime
//! distribution.  This crate adds the three layers that reshape that tail:
//!
//! * [`schedule`] — [`RestartSchedule`]s ([`Schedule::fixed`],
//!   [`Schedule::geometric`], [`Schedule::luby`]) driving the engine's
//!   restart loop through
//!   [`AdaptiveSearch::solve_scheduled`](cbls_core::AdaptiveSearch::solve_scheduled);
//! * [`Portfolio`] — heterogeneous multi-walk runs (walk index →
//!   `(SearchConfig, Schedule)`), executed by [`run_portfolio_threads`],
//!   [`run_portfolio_rayon`] (or [`run_portfolio`] on any
//!   [`WalkExecutor`](cbls_parallel::WalkExecutor) back-end, with optional
//!   [`WalkEvent`](cbls_parallel::WalkEvent) telemetry) or replayed
//!   deterministically by [`SimulatedPortfolio`] — all thin adapters over
//!   the executor layer of `cbls-parallel`, so first-finisher stop-flag
//!   semantics are preserved and seeds derive through the same
//!   [`WalkSeeds`](cbls_parallel::WalkSeeds) family as the flat runners;
//! * [`AdaptiveScheduler`] — a bandit-style allocator that shifts walk
//!   budget towards the strategies with the best observed tails across
//!   successive solve requests.
//!
//! Every portfolio run can record its per-walk iteration counts into a
//! [`DistributionAccumulator`](cbls_perfmodel::DistributionAccumulator), so
//! the order-statistics speedup predictor of `cbls-perfmodel` runs against
//! *empirical* distributions and
//! [`SimulatedPortfolio::predicted_vs_observed`] compares the model with the
//! replayed reality in one pipeline.
//!
//! ## Quick start
//!
//! ```
//! use cbls_core::{Evaluator, SearchConfig};
//! use cbls_portfolio::{Portfolio, PortfolioMember, Schedule, SimulatedPortfolio};
//!
//! // A toy model: sort a permutation (cost = number of misplaced values).
//! #[derive(Clone)]
//! struct Sort(usize);
//! impl Evaluator for Sort {
//!     fn size(&self) -> usize { self.0 }
//!     fn init(&mut self, perm: &[usize]) -> i64 { self.cost(perm) }
//!     fn cost(&self, perm: &[usize]) -> i64 {
//!         perm.iter().enumerate().filter(|&(i, &v)| i != v).count() as i64
//!     }
//!     fn cost_on_variable(&self, perm: &[usize], i: usize) -> i64 {
//!         i64::from(perm[i] != i)
//!     }
//! }
//!
//! let strategies = vec![
//!     PortfolioMember::new("fixed", SearchConfig::default(), Schedule::fixed(10_000, 3)),
//!     PortfolioMember::new("luby", SearchConfig::default(), Schedule::luby(1_000, 20)),
//! ];
//! let portfolio = Portfolio::cycled(&strategies, 4).with_master_seed(42);
//! let sim = SimulatedPortfolio::replay(&|| Sort(16), &portfolio);
//! assert!(sim.success_rate() > 0.0);
//! let table = sim.predicted_vs_observed(&[1, 2, 4]).unwrap();
//! assert_eq!(table.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod portfolio;
mod runner;
pub mod schedule;
mod simulate;

pub use adaptive::{AdaptiveScheduler, StrategyStats};
pub use portfolio::{Portfolio, PortfolioMember};
pub use runner::{
    run_portfolio, run_portfolio_rayon, run_portfolio_threads, MemberStats, PortfolioResult,
    PortfolioWalkReport,
};
pub use schedule::{luby, RestartSchedule, Schedule};
pub use simulate::{SimulatedPortfolio, SpeedupComparison};
