//! Heterogeneous walk portfolios: walk index → (strategy, schedule).
//!
//! The paper launches `p` *identical* walks; a portfolio generalizes this to
//! `p` walks each owning a [`SearchConfig`] and a [`Schedule`].  Seed
//! derivation reuses [`WalkSeeds`], so walk `i` of a portfolio draws exactly
//! the stream walk `i` of a flat multi-walk run with the same master seed
//! would draw — strategies change how the stream is *used*, never which
//! stream is used.

use std::time::Duration;

use cbls_core::SearchConfig;
use cbls_parallel::{MultiWalkConfig, WalkSeeds};
use serde::{Deserialize, Serialize};

use crate::schedule::{RestartSchedule, Schedule};

/// One walk's strategy: an engine configuration plus a restart schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioMember {
    /// Short name used in reports and by the adaptive scheduler to identify
    /// the strategy across solve requests.
    pub label: String,
    /// Engine parameters of the walk (its `max_iterations_per_restart` /
    /// `max_restarts` pair is superseded by the schedule).
    pub search: SearchConfig,
    /// The restart schedule driving the walk's budget slices.
    pub schedule: Schedule,
}

impl PortfolioMember {
    /// Create a member.
    #[must_use]
    pub fn new(label: impl Into<String>, search: SearchConfig, schedule: Schedule) -> Self {
        Self {
            label: label.into(),
            search,
            schedule,
        }
    }

    /// A member running the default engine parameters under the given
    /// schedule.
    #[must_use]
    pub fn with_schedule(label: impl Into<String>, schedule: Schedule) -> Self {
        Self::new(label, SearchConfig::default(), schedule)
    }

    /// Validate the member's configuration and schedule.
    pub fn validate(&self) -> Result<(), String> {
        self.search
            .validate()
            .map_err(|e| format!("member '{}': {e}", self.label))?;
        self.schedule
            .validate()
            .map_err(|e| format!("member '{}': {e}", self.label))
    }
}

/// A heterogeneous multi-walk run description: one [`PortfolioMember`] per
/// walk, a master seed and an optional wall-clock timeout.
///
/// Walk `i` runs member `i`; use [`Portfolio::cycled`] to spread a small set
/// of strategy prototypes over a larger walk count round-robin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    members: Vec<PortfolioMember>,
    master_seed: u64,
    timeout: Option<Duration>,
}

impl Portfolio {
    /// A portfolio running `members[i]` on walk `i`, with the
    /// [default master seed](MultiWalkConfig::DEFAULT_MASTER_SEED).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or any member fails validation.
    #[must_use]
    pub fn new(members: Vec<PortfolioMember>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        for member in &members {
            if let Err(e) = member.validate() {
                panic!("invalid portfolio: {e}");
            }
        }
        Self {
            members,
            master_seed: MultiWalkConfig::DEFAULT_MASTER_SEED,
            timeout: None,
        }
    }

    /// Spread `prototypes` over `walks` walks round-robin (walk `i` runs
    /// `prototypes[i % prototypes.len()]`).
    ///
    /// # Panics
    ///
    /// Panics if `prototypes` is empty or `walks` is zero.
    #[must_use]
    pub fn cycled(prototypes: &[PortfolioMember], walks: usize) -> Self {
        assert!(
            !prototypes.is_empty(),
            "a portfolio needs at least one member"
        );
        assert!(walks > 0, "a portfolio needs at least one walk");
        let members = (0..walks)
            .map(|w| prototypes[w % prototypes.len()].clone())
            .collect();
        Self::new(members)
    }

    /// A homogeneous portfolio: the same configuration and schedule on every
    /// walk (the paper's scheme expressed as a portfolio).
    #[must_use]
    pub fn uniform(search: SearchConfig, schedule: Schedule, walks: usize) -> Self {
        let member = PortfolioMember::new("uniform", search, schedule);
        Self::cycled(std::slice::from_ref(&member), walks)
    }

    /// Replace the master seed.
    #[must_use]
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Attach a wall-clock timeout to every backend run of this portfolio.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Number of walks (= number of members).
    #[must_use]
    pub fn walks(&self) -> usize {
        self.members.len()
    }

    /// The member of walk `walk_id`.
    #[must_use]
    pub fn member_of(&self, walk_id: usize) -> &PortfolioMember {
        &self.members[walk_id]
    }

    /// All members, ordered by walk index.
    #[must_use]
    pub fn members(&self) -> &[PortfolioMember] {
        &self.members
    }

    /// The master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The optional wall-clock timeout.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The per-walk seed family of this portfolio.
    #[must_use]
    pub fn seeds(&self) -> WalkSeeds {
        WalkSeeds::new(self.master_seed)
    }

    /// Total iteration budget across all walks and restarts (the work bound
    /// of a run in which no walk ever solves).
    #[must_use]
    pub fn total_iteration_budget(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.schedule.total_budget())
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycled_assigns_members_round_robin() {
        let protos = vec![
            PortfolioMember::with_schedule("a", Schedule::fixed(100, 1)),
            PortfolioMember::with_schedule("b", Schedule::luby(50, 3)),
        ];
        let p = Portfolio::cycled(&protos, 5);
        assert_eq!(p.walks(), 5);
        let labels: Vec<&str> = (0..5).map(|w| p.member_of(w).label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "a", "b", "a"]);
    }

    #[test]
    fn default_master_seed_is_shared_with_multiwalk() {
        let p = Portfolio::uniform(SearchConfig::default(), Schedule::fixed(10, 0), 2);
        assert_eq!(p.master_seed(), MultiWalkConfig::DEFAULT_MASTER_SEED);
        // and the derived per-walk seeds are the multi-walk seeds
        assert_eq!(
            p.seeds().seed_of(1),
            WalkSeeds::new(MultiWalkConfig::DEFAULT_MASTER_SEED).seed_of(1)
        );
    }

    #[test]
    fn budget_sums_across_members() {
        let protos = vec![
            PortfolioMember::with_schedule("a", Schedule::fixed(100, 1)), // 200
            PortfolioMember::with_schedule("b", Schedule::fixed(50, 3)),  // 200
        ];
        let p = Portfolio::cycled(&protos, 3); // a, b, a
        assert_eq!(p.total_iteration_budget(), 600);
    }

    #[test]
    fn portfolio_serde_round_trip() {
        let p = Portfolio::uniform(SearchConfig::default(), Schedule::luby(10, 4), 3)
            .with_master_seed(99)
            .with_timeout(Duration::from_millis(250));
        let json = serde_json::to_string(&p).unwrap();
        let back: Portfolio = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_portfolio_is_rejected() {
        let _ = Portfolio::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "invalid portfolio")]
    fn invalid_member_is_rejected() {
        let _ = Portfolio::new(vec![PortfolioMember::with_schedule(
            "bad",
            Schedule::fixed(0, 1),
        )]);
    }
}
