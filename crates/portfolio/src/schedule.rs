//! Restart schedules: how a walk's iteration budget is sliced into restarts.
//!
//! The paper's engine restarts on a *fixed* schedule (`max_restarts` slices
//! of `max_iterations_per_restart` iterations each).  Because the parallel
//! speedup of independent walks is governed by the left tail of the per-walk
//! runtime distribution, reshaping that distribution with a restart schedule
//! is the cheapest lever a portfolio has:
//!
//! * [`Fixed`] — the paper's own policy, expressed as a schedule;
//! * [`Geometric`] — slices grow by a constant factor, hedging between many
//!   short probes and a few long dives;
//! * [`Luby`] — the universal schedule of Luby, Sinclair & Zuckerman (1993),
//!   within a constant factor of the optimal restart strategy for *any*
//!   runtime distribution, driven by the [`luby`] sequence
//!   1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
//!
//! A schedule plugs into the engine through
//! [`AdaptiveSearch::solve_scheduled`](cbls_core::AdaptiveSearch::solve_scheduled):
//! the engine asks for the budget of restart 0, 1, 2, ... and stops when the
//! schedule returns `None`.  The walk's random stream is *never* re-seeded
//! between restarts, so two schedules over the same seed explore genuinely
//! different trajectories of the same stream.

use serde::{Deserialize, Serialize};

/// A source of per-restart iteration budgets.
///
/// `budget(restart)` returns the iteration budget of the 0-based `restart`,
/// or `None` once the schedule is exhausted (the walk gives up).  Schedules
/// must be deterministic: the same `restart` index always yields the same
/// budget.
pub trait RestartSchedule {
    /// Iteration budget of restart `restart` (0-based), or `None` to stop.
    fn budget(&self, restart: u64) -> Option<u64>;

    /// Short human-readable description used in reports.
    fn label(&self) -> String;

    /// Total iteration budget across every restart of the schedule.
    fn total_budget(&self) -> u64 {
        (0..).map_while(|r| self.budget(r)).sum()
    }
}

/// The `i`-th term of the Luby sequence (1-based):
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
///
/// Defined by `luby(2^k − 1) = 2^(k−1)` and
/// `luby(i) = luby(i − 2^(k−1) + 1)` for `2^(k−1) ≤ i < 2^k − 1`.
///
/// # Panics
///
/// Panics if `i == 0` (the sequence is 1-based).
#[must_use]
pub fn luby(mut i: u64) -> u64 {
    assert!(i >= 1, "the Luby sequence is 1-based");
    loop {
        // The smallest k with i <= 2^k - 1 is i's bit length; computing the
        // block end as a right-shift of u64::MAX keeps k = 64 overflow-free.
        let k = 64 - i.leading_zeros();
        let block_end = u64::MAX >> (64 - k); // 2^k - 1
        if i == block_end {
            return 1u64 << (k - 1);
        }
        i -= block_end >> 1; // recurse on i - (2^(k-1) - 1)
    }
}

/// The paper's fixed schedule: `max_restarts + 1` slices of `budget`
/// iterations each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fixed {
    /// Iterations per restart.
    pub budget: u64,
    /// Number of restarts after the first try (total slices = this + 1).
    pub max_restarts: u32,
}

impl RestartSchedule for Fixed {
    fn budget(&self, restart: u64) -> Option<u64> {
        (restart <= u64::from(self.max_restarts)).then_some(self.budget)
    }

    fn label(&self) -> String {
        format!(
            "fixed({}x{})",
            self.budget,
            u64::from(self.max_restarts) + 1
        )
    }
}

/// Geometrically growing slices: restart `r` gets `base * factor^r`
/// iterations (rounded, at least 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometric {
    /// Budget of the first restart.
    pub base: u64,
    /// Growth factor per restart (≥ 1).
    pub factor: f64,
    /// Number of restarts after the first try (total slices = this + 1).
    pub max_restarts: u32,
}

impl RestartSchedule for Geometric {
    fn budget(&self, restart: u64) -> Option<u64> {
        if restart > u64::from(self.max_restarts) {
            return None;
        }
        let raw = self.base as f64 * self.factor.powi(restart.min(1 << 16) as i32);
        Some((raw.min(u64::MAX as f64) as u64).max(1))
    }

    fn label(&self) -> String {
        format!(
            "geometric({}x{:.2}^r, {} restarts)",
            self.base, self.factor, self.max_restarts
        )
    }
}

/// The Luby universal schedule: restart `r` gets `unit * luby(r + 1)`
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Luby {
    /// Scale of the sequence: restart `r` runs `unit * luby(r + 1)` iterations.
    pub unit: u64,
    /// Number of restarts after the first try (total slices = this + 1).
    pub max_restarts: u32,
}

impl RestartSchedule for Luby {
    fn budget(&self, restart: u64) -> Option<u64> {
        (restart <= u64::from(self.max_restarts))
            .then(|| self.unit.saturating_mul(luby(restart + 1)))
    }

    fn label(&self) -> String {
        format!("luby({}u, {} restarts)", self.unit, self.max_restarts)
    }
}

/// A concrete, serializable restart schedule (the closed set of schedule
/// families the portfolio machinery ships with).
///
/// `Schedule` implements [`RestartSchedule`] by delegation, so APIs that take
/// the trait accept it directly; code that needs an open set of schedules can
/// implement the trait on its own types instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Fixed-size slices (the paper's policy).
    Fixed(Fixed),
    /// Geometrically growing slices.
    Geometric(Geometric),
    /// The Luby universal schedule.
    Luby(Luby),
}

impl Schedule {
    /// A fixed schedule of `max_restarts + 1` slices of `budget` iterations.
    #[must_use]
    pub fn fixed(budget: u64, max_restarts: u32) -> Self {
        Schedule::Fixed(Fixed {
            budget,
            max_restarts,
        })
    }

    /// A geometric schedule starting at `base` and growing by `factor`.
    #[must_use]
    pub fn geometric(base: u64, factor: f64, max_restarts: u32) -> Self {
        Schedule::Geometric(Geometric {
            base,
            factor,
            max_restarts,
        })
    }

    /// A Luby schedule scaled by `unit`.
    #[must_use]
    pub fn luby(unit: u64, max_restarts: u32) -> Self {
        Schedule::Luby(Luby { unit, max_restarts })
    }

    /// The schedule equivalent to a [`SearchConfig`](cbls_core::SearchConfig)'s
    /// own fixed restart policy.
    #[must_use]
    pub fn of_config(config: &cbls_core::SearchConfig) -> Self {
        Schedule::fixed(config.max_iterations_per_restart, config.max_restarts)
    }

    /// Validate the schedule parameters, returning a description of the
    /// first offending field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Schedule::Fixed(f) => {
                if f.budget == 0 {
                    return Err("fixed schedule budget must be positive".into());
                }
            }
            Schedule::Geometric(g) => {
                if g.base == 0 {
                    return Err("geometric schedule base must be positive".into());
                }
                if !(g.factor.is_finite() && g.factor >= 1.0) {
                    return Err("geometric schedule factor must be >= 1".into());
                }
            }
            Schedule::Luby(l) => {
                if l.unit == 0 {
                    return Err("luby schedule unit must be positive".into());
                }
            }
        }
        Ok(())
    }
}

impl RestartSchedule for Schedule {
    fn budget(&self, restart: u64) -> Option<u64> {
        match self {
            Schedule::Fixed(s) => s.budget(restart),
            Schedule::Geometric(s) => s.budget(restart),
            Schedule::Luby(s) => s.budget(restart),
        }
    }

    fn label(&self) -> String {
        match self {
            Schedule::Fixed(s) => s.label(),
            Schedule::Geometric(s) => s.label(),
            Schedule::Luby(s) => s.label(),
        }
    }
}

impl From<Fixed> for Schedule {
    fn from(s: Fixed) -> Self {
        Schedule::Fixed(s)
    }
}

impl From<Geometric> for Schedule {
    fn from(s: Geometric) -> Self {
        Schedule::Geometric(s)
    }
}

impl From<Luby> for Schedule {
    fn from(s: Luby) -> Self {
        Schedule::Luby(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical first 63 terms of the Luby sequence (through the full
    /// block ending at `2^6 - 1 = 63`).
    const LUBY_PREFIX: [u64; 63] = [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        16, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4,
        8, 16, 32,
    ];

    #[test]
    fn luby_matches_the_canonical_prefix() {
        for (i, &expected) in LUBY_PREFIX.iter().enumerate() {
            let term = luby(i as u64 + 1);
            assert_eq!(term, expected, "luby({}) = {term}, want {expected}", i + 1);
        }
    }

    #[test]
    fn luby_block_boundaries_are_powers_of_two() {
        for k in 1..=20u32 {
            assert_eq!(luby((1u64 << k) - 1), 1u64 << (k - 1));
        }
    }

    #[test]
    fn luby_handles_the_extremes_of_u64() {
        // u64::MAX = 2^64 - 1 ends the 64th block; one past 2^63 restarts it.
        assert_eq!(luby(u64::MAX), 1u64 << 63);
        assert_eq!(luby(1u64 << 63), 1);
        assert_eq!(luby((1u64 << 63) + 1), 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn luby_zero_is_rejected() {
        let _ = luby(0);
    }

    #[test]
    fn fixed_schedule_mirrors_search_config() {
        let config = cbls_core::SearchConfig::builder()
            .max_iterations_per_restart(500)
            .max_restarts(3)
            .build();
        let schedule = Schedule::of_config(&config);
        for r in 0..10 {
            assert_eq!(schedule.budget(r), config.restart_budget(r));
        }
        assert_eq!(schedule.total_budget(), config.total_iteration_budget());
    }

    #[test]
    fn geometric_schedule_grows_and_terminates() {
        let s = Schedule::geometric(100, 2.0, 4);
        let budgets: Vec<u64> = (0..).map_while(|r| s.budget(r)).collect();
        assert_eq!(budgets, vec![100, 200, 400, 800, 1600]);
        assert_eq!(s.total_budget(), 3100);
        // factor 1.0 degenerates to the fixed schedule
        let flat = Schedule::geometric(100, 1.0, 2);
        assert_eq!(
            (0..).map_while(|r| flat.budget(r)).collect::<Vec<_>>(),
            vec![100, 100, 100]
        );
    }

    #[test]
    fn luby_schedule_scales_the_sequence() {
        let s = Schedule::luby(1000, 6);
        let budgets: Vec<u64> = (0..).map_while(|r| s.budget(r)).collect();
        assert_eq!(budgets, vec![1000, 1000, 2000, 1000, 1000, 2000, 4000]);
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(Schedule::fixed(0, 1).validate().is_err());
        assert!(Schedule::geometric(0, 2.0, 1).validate().is_err());
        assert!(Schedule::geometric(10, 0.5, 1).validate().is_err());
        assert!(Schedule::geometric(10, f64::NAN, 1).validate().is_err());
        assert!(Schedule::luby(0, 1).validate().is_err());
        assert!(Schedule::fixed(1, 0).validate().is_ok());
        assert!(Schedule::geometric(1, 1.5, 0).validate().is_ok());
        assert!(Schedule::luby(1, 0).validate().is_ok());
    }

    #[test]
    fn labels_identify_the_family() {
        assert!(Schedule::fixed(10, 1).label().starts_with("fixed"));
        assert!(Schedule::geometric(10, 2.0, 1)
            .label()
            .starts_with("geometric"));
        assert!(Schedule::luby(10, 1).label().starts_with("luby"));
    }

    #[test]
    fn schedules_serde_round_trip() {
        for s in [
            Schedule::fixed(10, 2),
            Schedule::geometric(5, 1.5, 3),
            Schedule::luby(7, 8),
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: Schedule = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }
}
