//! Deterministic sequential replay of a portfolio run, plus the
//! predicted-vs-observed speedup pipeline.
//!
//! Like `SimulatedMultiWalk` in `cbls-parallel`, the replay runs every walk
//! to completion (no walk is interrupted by a sibling's success), so one
//! replay answers "what would a `p`-walk run have cost?" for every prefix
//! `p ≤ walks`.  On top of that, the replay pools the solved walks'
//! iteration counts into an [`EmpiricalDistribution`] and compares the
//! order-statistics *prediction* (`E[min of p draws]` from `cbls-perfmodel`)
//! with the *observed* prefix minimum — the paper's speedup analysis run
//! against empirical rather than fitted distributions.

use cbls_core::EvaluatorFactory;
use cbls_parallel::{RayonExecutor, SequentialExecutor, WalkExecutor};
use cbls_perfmodel::{DistributionAccumulator, EmpiricalDistribution};
use serde::{Deserialize, Serialize};

use crate::portfolio::Portfolio;
use crate::runner::{batch_of, PortfolioWalkReport};

/// A deterministic replay of every walk of a portfolio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatedPortfolio {
    master_seed: u64,
    runs: Vec<PortfolioWalkReport>,
}

/// One point of a predicted-vs-observed speedup comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupComparison {
    /// Number of walks (the paper's core count).
    pub walks: usize,
    /// Expected iterations of the winning walk under the order-statistics
    /// model (`E[min of p draws]` from the pooled empirical distribution).
    pub predicted_iterations: f64,
    /// Iterations of the actual winning walk among the first `walks` walks
    /// (`None` if none of them solved the problem).
    pub observed_iterations: Option<u64>,
    /// Predicted speedup over the mean sequential run.
    pub predicted_speedup: f64,
    /// Observed speedup over the mean sequential run, if observed.
    pub observed_speedup: Option<f64>,
}

impl SimulatedPortfolio {
    /// Replay every walk sequentially (deterministic, single-threaded).
    pub fn replay<F>(factory: &F, portfolio: &Portfolio) -> Self
    where
        F: EvaluatorFactory,
    {
        Self::replay_on(factory, portfolio, &SequentialExecutor)
    }

    /// Replay using the rayon pool to speed the replay itself up; the result
    /// is identical to [`SimulatedPortfolio::replay`] because each walk's
    /// trajectory depends only on `(member, master_seed, walk_id)`.
    pub fn replay_parallel<F>(factory: &F, portfolio: &Portfolio) -> Self
    where
        F: EvaluatorFactory,
    {
        Self::replay_on(factory, portfolio, &RayonExecutor)
    }

    /// Replay the portfolio on any [`WalkExecutor`] back-end.  Every walk
    /// runs to completion (no walk is interrupted by a sibling's success and
    /// no timeout applies), so the replay is the same on every back-end.
    pub fn replay_on<X, F>(factory: &F, portfolio: &Portfolio, executor: &X) -> Self
    where
        X: WalkExecutor,
        F: EvaluatorFactory,
    {
        let batch = batch_of(portfolio).run_to_completion().without_timeout();
        let runs = executor
            .execute(factory, &batch)
            .records
            .into_iter()
            .map(|r| PortfolioWalkReport {
                walk_id: r.walk_id,
                member_label: r.label,
                seed: r.seed,
                outcome: r.outcome,
                fault: r.fault,
            })
            .collect();
        Self {
            master_seed: portfolio.master_seed(),
            runs,
        }
    }

    /// The master seed of the replay.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of replayed walks.
    #[must_use]
    pub fn walks(&self) -> usize {
        self.runs.len()
    }

    /// Per-walk replays, ordered by walk index.
    #[must_use]
    pub fn runs(&self) -> &[PortfolioWalkReport] {
        &self.runs
    }

    /// Iterations-to-solution of every *solved* walk, in walk order.
    #[must_use]
    pub fn solved_iterations(&self) -> Vec<u64> {
        self.runs
            .iter()
            .filter(|r| r.outcome.solved())
            .map(|r| r.outcome.stats.iterations)
            .collect()
    }

    /// Fraction of walks that solved the problem within their schedule.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().filter(|r| r.outcome.solved()).count() as f64 / self.runs.len() as f64
    }

    /// The iteration count a `p`-walk run would have needed: the minimum
    /// iterations-to-solution among the first `p` walks.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    #[must_use]
    pub fn parallel_iterations(&self, p: usize) -> Option<u64> {
        assert!(p >= 1, "at least one walk is needed");
        self.runs
            .iter()
            .take(p)
            .filter(|r| r.outcome.solved())
            .map(|r| r.outcome.stats.iterations)
            .min()
    }

    /// Index of the walk that would win a `p`-walk run.
    #[must_use]
    pub fn winner(&self, p: usize) -> Option<usize> {
        self.runs
            .iter()
            .take(p)
            .filter(|r| r.outcome.solved())
            .min_by_key(|r| (r.outcome.stats.iterations, r.walk_id))
            .map(|r| r.walk_id)
    }

    /// Mean sequential iterations-to-solution over the solved walks.
    #[must_use]
    pub fn mean_sequential_iterations(&self) -> Option<f64> {
        let solved = self.solved_iterations();
        if solved.is_empty() {
            None
        } else {
            Some(solved.iter().sum::<u64>() as f64 / solved.len() as f64)
        }
    }

    /// Observed speedup of a `p`-walk run over the mean sequential run,
    /// measured in iterations.
    #[must_use]
    pub fn speedup(&self, p: usize) -> Option<f64> {
        let seq = self.mean_sequential_iterations()?;
        let par = self.parallel_iterations(p)? as f64;
        if par > 0.0 {
            Some(seq / par)
        } else {
            Some(seq.max(1.0))
        }
    }

    /// Record every solved walk's iterations into `acc` (online recording
    /// across successive solve requests).
    pub fn record_into(&self, acc: &mut DistributionAccumulator) {
        for run in &self.runs {
            if run.outcome.solved() {
                acc.record_count(run.outcome.stats.iterations);
            }
        }
    }

    /// The pooled empirical distribution of iterations-to-solution over the
    /// solved walks (`None` if no walk solved the problem).
    #[must_use]
    pub fn iteration_distribution(&self) -> Option<EmpiricalDistribution> {
        let mut acc = DistributionAccumulator::new();
        self.record_into(&mut acc);
        acc.distribution()
    }

    /// Compare the order-statistics *prediction* of the `p`-walk iteration
    /// count (from the pooled empirical distribution) with the *observed*
    /// prefix minimum, for each requested walk count.
    ///
    /// Returns `None` if no walk solved the problem (there is no
    /// distribution to predict from).
    #[must_use]
    pub fn predicted_vs_observed(&self, walk_counts: &[usize]) -> Option<Vec<SpeedupComparison>> {
        let dist = self.iteration_distribution()?;
        let mean = dist.mean();
        Some(
            walk_counts
                .iter()
                .map(|&p| {
                    let predicted_iterations = dist.expected_min_of(p.max(1));
                    let predicted_speedup = if predicted_iterations > 0.0 {
                        mean / predicted_iterations
                    } else {
                        1.0
                    };
                    SpeedupComparison {
                        walks: p,
                        predicted_iterations,
                        observed_iterations: self.parallel_iterations(p.max(1)),
                        predicted_speedup,
                        observed_speedup: self.speedup(p.max(1)),
                    }
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::PortfolioMember;
    use crate::schedule::Schedule;
    use cbls_core::{Evaluator, SearchConfig};

    #[derive(Clone)]
    struct Sort(usize);
    impl Evaluator for Sort {
        fn size(&self) -> usize {
            self.0
        }
        fn init(&mut self, perm: &[usize]) -> i64 {
            self.cost(perm)
        }
        fn cost(&self, perm: &[usize]) -> i64 {
            perm.iter().enumerate().filter(|&(i, &v)| i != v).count() as i64
        }
        fn cost_on_variable(&self, perm: &[usize], i: usize) -> i64 {
            i64::from(perm[i] != i)
        }
    }

    fn mixed_portfolio(walks: usize, seed: u64) -> Portfolio {
        let search = SearchConfig::default();
        let protos = vec![
            PortfolioMember::new("fixed", search.clone(), Schedule::fixed(10_000, 2)),
            PortfolioMember::new("luby", search.clone(), Schedule::luby(1_000, 20)),
            PortfolioMember::new("geom", search, Schedule::geometric(500, 2.0, 8)),
        ];
        Portfolio::cycled(&protos, walks).with_master_seed(seed)
    }

    #[test]
    fn replay_is_bit_for_bit_deterministic() {
        let portfolio = mixed_portfolio(6, 9);
        let a = SimulatedPortfolio::replay(&|| Sort(20), &portfolio);
        let b = SimulatedPortfolio::replay(&|| Sort(20), &portfolio);
        assert_eq!(a.walks(), b.walks());
        for (ra, rb) in a.runs().iter().zip(b.runs().iter()) {
            assert_eq!(ra.seed, rb.seed);
            assert_eq!(ra.member_label, rb.member_label);
            assert_eq!(ra.outcome.stats, rb.outcome.stats);
            assert_eq!(ra.outcome.solution, rb.outcome.solution);
            assert_eq!(ra.outcome.best_cost, rb.outcome.best_cost);
        }
    }

    #[test]
    fn parallel_replay_matches_sequential_replay() {
        let portfolio = mixed_portfolio(8, 11);
        let a = SimulatedPortfolio::replay(&|| Sort(18), &portfolio);
        let b = SimulatedPortfolio::replay_parallel(&|| Sort(18), &portfolio);
        for (ra, rb) in a.runs().iter().zip(b.runs().iter()) {
            assert_eq!(ra.walk_id, rb.walk_id);
            assert_eq!(ra.outcome.stats, rb.outcome.stats);
        }
    }

    #[test]
    fn prefix_minimum_is_monotone() {
        let sim = SimulatedPortfolio::replay(&|| Sort(24), &mixed_portfolio(12, 3));
        assert!((sim.success_rate() - 1.0).abs() < 1e-12);
        let mut last = u64::MAX;
        for p in 1..=12 {
            let it = sim.parallel_iterations(p).unwrap();
            assert!(it <= last);
            last = it;
            let w = sim.winner(p).unwrap();
            assert!(w < p);
            assert_eq!(sim.runs()[w].outcome.stats.iterations, it);
        }
    }

    #[test]
    fn predicted_and_observed_speedups_are_comparable() {
        let sim = SimulatedPortfolio::replay(&|| Sort(28), &mixed_portfolio(16, 5));
        let table = sim.predicted_vs_observed(&[1, 2, 4, 8, 16]).unwrap();
        assert_eq!(table.len(), 5);
        for row in &table {
            assert!(row.predicted_speedup >= 1.0 - 1e-9);
            let observed = row.observed_speedup.unwrap();
            assert!(observed > 0.0);
            // prediction and observation use the same pooled distribution, so
            // they cannot be wildly apart for the full prefix
            assert!(row.predicted_iterations > 0.0);
        }
        // the prediction is monotone in the walk count
        for w in table.windows(2) {
            assert!(w[1].predicted_speedup >= w[0].predicted_speedup - 1e-9);
        }
        // at p = walks the observed minimum equals the distribution's minimum
        let dist = sim.iteration_distribution().unwrap();
        assert_eq!(
            table.last().unwrap().observed_iterations.unwrap() as f64,
            dist.min()
        );
    }

    #[test]
    fn record_into_accumulates_across_runs() {
        let mut acc = DistributionAccumulator::new();
        let a = SimulatedPortfolio::replay(&|| Sort(16), &mixed_portfolio(3, 1));
        let b = SimulatedPortfolio::replay(&|| Sort(16), &mixed_portfolio(3, 2));
        a.record_into(&mut acc);
        b.record_into(&mut acc);
        assert_eq!(
            acc.len(),
            a.solved_iterations().len() + b.solved_iterations().len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_prefix_is_rejected() {
        let sim = SimulatedPortfolio::replay(&|| Sort(8), &mixed_portfolio(2, 1));
        let _ = sim.parallel_iterations(0);
    }
}
