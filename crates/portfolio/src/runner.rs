//! True parallel execution of a heterogeneous portfolio.
//!
//! [`run_portfolio_threads`] and [`run_portfolio_rayon`] mirror the flat
//! multi-walk back-ends of `cbls-parallel` (`run_threads` / `run_rayon`):
//! walks share nothing but a stop flag, the first walk to reach its target
//! cost raises the flag, and every other walk stops at its next poll —
//! first-finisher semantics preserved, strategies heterogeneous.
//!
//! Like the flat runners, both functions (and [`run_portfolio`], the generic
//! entry point taking any [`WalkExecutor`] and an optional telemetry sink)
//! are thin adapters over the executor layer of `cbls-parallel`: a portfolio
//! is exactly a [`WalkBatch`] whose jobs carry per-member engine
//! configurations and restart schedules.

use std::time::Duration;

use cbls_core::{EvaluatorFactory, Incumbent, SearchOutcome};
use cbls_parallel::{
    select_winner, DegradationReason, EventSink, RayonExecutor, ThreadsExecutor, WalkBatch,
    WalkExecutor, WalkFault, WalkJob, WalkOutcome,
};
use cbls_perfmodel::DistributionAccumulator;
use serde::{Deserialize, Serialize};

use crate::portfolio::Portfolio;
use crate::schedule::RestartSchedule;

/// The outcome of one walk of a portfolio run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioWalkReport {
    /// Walk index (`0..portfolio.walks()`).
    pub walk_id: usize,
    /// Label of the member the walk ran.
    pub member_label: String,
    /// The 64-bit seed the walk's stream was derived from.
    pub seed: u64,
    /// The walk's search outcome.
    pub outcome: SearchOutcome,
    /// The walk's structured fault, if it panicked or stalled.
    pub fault: Option<WalkFault>,
}

/// The aggregate result of a portfolio run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioResult {
    /// Index of the winning walk (solved with the smallest elapsed time).
    pub winner: Option<usize>,
    /// Per-walk reports, ordered by walk index.
    pub reports: Vec<PortfolioWalkReport>,
    /// The best assignment the run holds, winner or not (anytime result).
    pub incumbent: Option<Incumbent>,
    /// Why the run returned a partial result, when it did.
    pub degradation: Option<DegradationReason>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl PortfolioResult {
    /// Whether any walk found a solution.
    #[must_use]
    pub fn solved(&self) -> bool {
        self.winner.is_some()
    }

    /// The winning walk's report, if any walk solved the problem.
    #[must_use]
    pub fn winning_report(&self) -> Option<&PortfolioWalkReport> {
        self.winner.map(|w| &self.reports[w])
    }

    /// The winning walk's outcome, if any.
    #[must_use]
    pub fn winning_outcome(&self) -> Option<&SearchOutcome> {
        self.winning_report().map(|r| &r.outcome)
    }

    /// Iterations performed by the winning walk, if solved.
    #[must_use]
    pub fn winning_iterations(&self) -> Option<u64> {
        self.winning_outcome().map(|o| o.stats.iterations)
    }

    /// Total iterations across all walks (the run's total work).
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.outcome.stats.iterations)
            .sum()
    }

    /// Record every solved walk's iterations-to-solution into `acc` (the
    /// online distribution the order-statistics speedup predictor consumes).
    pub fn record_iterations(&self, acc: &mut DistributionAccumulator) {
        for report in &self.reports {
            if report.outcome.solved() {
                acc.record_count(report.outcome.stats.iterations);
            }
        }
    }

    /// Record every walk's restart count into `acc`.
    pub fn record_restarts(&self, acc: &mut DistributionAccumulator) {
        for report in &self.reports {
            acc.record_count(report.outcome.stats.restarts);
        }
    }

    /// Aggregate per-member statistics (walks sharing a label), ordered by
    /// first appearance in the report list.  This is the grouping the
    /// observability layer's portfolio metrics and the `cbls-trace` summary
    /// render: it answers "which restart strategy did the work / won?".
    #[must_use]
    pub fn member_stats(&self) -> Vec<MemberStats> {
        let mut stats: Vec<MemberStats> = Vec::new();
        for report in &self.reports {
            let entry = match stats.iter_mut().find(|s| s.label == report.member_label) {
                Some(entry) => entry,
                None => {
                    stats.push(MemberStats {
                        label: report.member_label.clone(),
                        walks: 0,
                        solved: 0,
                        faulted: 0,
                        won: false,
                        iterations: 0,
                        restarts: 0,
                        best_cost: i64::MAX,
                    });
                    stats.last_mut().expect("just pushed")
                }
            };
            entry.walks += 1;
            entry.solved += usize::from(report.outcome.solved());
            entry.faulted += usize::from(report.fault.is_some());
            entry.won |= self.winner == Some(report.walk_id);
            entry.iterations += report.outcome.stats.iterations;
            entry.restarts += report.outcome.stats.restarts;
            entry.best_cost = entry.best_cost.min(report.outcome.best_cost);
        }
        stats
    }
}

/// Aggregate statistics for all walks of one portfolio member (one label),
/// as computed by [`PortfolioResult::member_stats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberStats {
    /// The member's label.
    pub label: String,
    /// Walks that ran this member.
    pub walks: usize,
    /// How many of them solved the problem.
    pub solved: usize,
    /// How many of them faulted (panicked or stalled).
    pub faulted: usize,
    /// Whether the run's winning walk belonged to this member.
    pub won: bool,
    /// Total iterations across the member's walks.
    pub iterations: u64,
    /// Total restarts across the member's walks.
    pub restarts: u64,
    /// Best cost any of the member's walks reached.
    pub best_cost: i64,
}

impl WalkOutcome for PortfolioWalkReport {
    fn walk_id(&self) -> usize {
        self.walk_id
    }
    fn outcome(&self) -> &SearchOutcome {
        &self.outcome
    }
}

/// The walk batch a [`Portfolio`] describes: one job per member, carrying
/// the member's engine configuration, restart schedule and label, under
/// first-finisher stop semantics.  Seeds come from the portfolio's
/// [`WalkSeeds`](cbls_parallel::WalkSeeds) family, so walk `i` draws exactly
/// the stream a flat multi-walk run with the same master seed would draw.
pub(crate) fn batch_of(portfolio: &Portfolio) -> WalkBatch {
    let jobs = portfolio
        .members()
        .iter()
        .map(|member| {
            let schedule = member.schedule;
            WalkJob::new(member.search.clone())
                .with_label(member.label.clone())
                .with_budget(move |restart| schedule.budget(restart))
        })
        .collect();
    let batch = WalkBatch::new(portfolio.seeds(), jobs);
    match portfolio.timeout() {
        Some(timeout) => batch.with_timeout(timeout),
        None => batch,
    }
}

/// Run the portfolio on any [`WalkExecutor`] back-end, optionally emitting
/// [`WalkEvent`](cbls_parallel::WalkEvent) telemetry to `sink` (e.g. a
/// [`DistributionSink`](cbls_parallel::DistributionSink) feeding the
/// order-statistics predictor online, as walks finish).
pub fn run_portfolio<X, F>(
    factory: &F,
    portfolio: &Portfolio,
    executor: &X,
    sink: Option<&dyn EventSink>,
) -> PortfolioResult
where
    X: WalkExecutor,
    F: EvaluatorFactory,
{
    let batch = batch_of(portfolio);
    let execution = match sink {
        Some(sink) => executor.execute_with_telemetry(factory, &batch, sink),
        None => executor.execute(factory, &batch),
    };
    let reports: Vec<PortfolioWalkReport> = execution
        .records
        .into_iter()
        .map(|r| PortfolioWalkReport {
            walk_id: r.walk_id,
            member_label: r.label,
            seed: r.seed,
            outcome: r.outcome,
            fault: r.fault,
        })
        .collect();
    PortfolioResult {
        winner: select_winner(&reports),
        reports,
        incumbent: execution.incumbent,
        degradation: execution.degradation,
        wall_time: execution.wall_time,
    }
}

/// Run the portfolio with one OS thread per walk.
pub fn run_portfolio_threads<F>(factory: &F, portfolio: &Portfolio) -> PortfolioResult
where
    F: EvaluatorFactory,
{
    run_portfolio(factory, portfolio, &ThreadsExecutor, None)
}

/// Run the portfolio on the global rayon pool (for walk counts above the
/// physical core count).
pub fn run_portfolio_rayon<F>(factory: &F, portfolio: &Portfolio) -> PortfolioResult
where
    F: EvaluatorFactory,
{
    run_portfolio(factory, portfolio, &RayonExecutor, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::PortfolioMember;
    use crate::schedule::Schedule;
    use cbls_core::{monotonic_now, Evaluator, SearchConfig};
    use cbls_parallel::{DistributionSink, SequentialExecutor};

    #[derive(Clone)]
    struct Sort(usize);
    impl Evaluator for Sort {
        fn size(&self) -> usize {
            self.0
        }
        fn init(&mut self, perm: &[usize]) -> i64 {
            self.cost(perm)
        }
        fn cost(&self, perm: &[usize]) -> i64 {
            perm.iter().enumerate().filter(|&(i, &v)| i != v).count() as i64
        }
        fn cost_on_variable(&self, perm: &[usize], i: usize) -> i64 {
            i64::from(perm[i] != i)
        }
    }

    #[derive(Clone)]
    struct Hopeless(usize);
    impl Evaluator for Hopeless {
        fn size(&self) -> usize {
            self.0
        }
        fn init(&mut self, _perm: &[usize]) -> i64 {
            1
        }
        fn cost(&self, _perm: &[usize]) -> i64 {
            1
        }
        fn cost_on_variable(&self, _perm: &[usize], _i: usize) -> i64 {
            1
        }
    }

    fn mixed_portfolio(walks: usize) -> Portfolio {
        let search = SearchConfig::builder().stop_check_interval(4).build();
        let protos = vec![
            PortfolioMember::new("fixed", search.clone(), Schedule::fixed(10_000, 3)),
            PortfolioMember::new("luby", search.clone(), Schedule::luby(2_000, 15)),
            PortfolioMember::new("geom", search, Schedule::geometric(1_000, 2.0, 7)),
        ];
        Portfolio::cycled(&protos, walks).with_master_seed(42)
    }

    #[test]
    fn threads_backend_solves_and_labels_every_walk() {
        let portfolio = mixed_portfolio(4);
        let result = run_portfolio_threads(&|| Sort(24), &portfolio);
        assert!(result.solved());
        assert_eq!(result.reports.len(), 4);
        let winner = result.winner.unwrap();
        assert!(result.reports[winner].outcome.solved());
        for (i, r) in result.reports.iter().enumerate() {
            assert_eq!(r.walk_id, i);
            assert_eq!(r.member_label, portfolio.member_of(i).label);
            assert_eq!(r.seed, portfolio.seeds().seed_of(i));
        }
        assert!(result.total_iterations() >= result.winning_iterations().unwrap());
    }

    #[test]
    fn rayon_backend_matches_thread_backend_semantics() {
        let portfolio = mixed_portfolio(3);
        let a = run_portfolio_threads(&|| Sort(16), &portfolio);
        let b = run_portfolio_rayon(&|| Sort(16), &portfolio);
        assert!(a.solved() && b.solved());
        assert_eq!(a.reports.len(), b.reports.len());
        // walks are deterministic given (member, seed): walks that ran to
        // completion in both backends agree exactly
        for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
            if ra.outcome.solved() && rb.outcome.solved() {
                assert_eq!(ra.outcome.stats.iterations, rb.outcome.stats.iterations);
            }
        }
    }

    #[test]
    fn unsolvable_portfolio_reports_no_winner_and_respects_budgets() {
        let search = SearchConfig::default();
        let protos = vec![
            PortfolioMember::new("short", search.clone(), Schedule::fixed(100, 1)),
            PortfolioMember::new("luby", search, Schedule::luby(50, 5)),
        ];
        let portfolio = Portfolio::cycled(&protos, 2).with_master_seed(7);
        let result = run_portfolio_threads(&|| Hopeless(8), &portfolio);
        assert!(!result.solved());
        assert!(result.winning_report().is_none());
        // each walk consumed exactly its schedule's total budget
        assert_eq!(result.reports[0].outcome.stats.iterations, 200);
        assert_eq!(
            result.reports[1].outcome.stats.iterations,
            Schedule::luby(50, 5).total_budget()
        );
    }

    #[test]
    fn timeout_stops_hopeless_runs() {
        let search = SearchConfig::builder().stop_check_interval(1).build();
        let member = PortfolioMember::new("long", search, Schedule::fixed(u64::MAX / 8, 0));
        let portfolio = Portfolio::cycled(std::slice::from_ref(&member), 2)
            .with_timeout(Duration::from_millis(50));
        let started = monotonic_now();
        let result = run_portfolio_threads(&|| Hopeless(8), &portfolio);
        assert!(!result.solved());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn generic_entry_point_records_online_as_walks_finish() {
        let portfolio = mixed_portfolio(4);
        let sink = DistributionSink::new();
        let result = run_portfolio(&|| Sort(20), &portfolio, &SequentialExecutor, Some(&sink));
        let solved = result.reports.iter().filter(|r| r.outcome.solved()).count();
        assert!(result.solved());
        // the online stream saw exactly what the post-hoc pass would record
        let mut posthoc = DistributionAccumulator::new();
        result.record_iterations(&mut posthoc);
        let online = sink.into_accumulator();
        assert_eq!(online.len(), solved);
        let mut a = online.observations().to_vec();
        let mut b = posthoc.observations().to_vec();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_distributions_cover_solved_walks() {
        let portfolio = mixed_portfolio(4);
        let result = run_portfolio_rayon(&|| Sort(20), &portfolio);
        let mut iters = DistributionAccumulator::new();
        let mut restarts = DistributionAccumulator::new();
        result.record_iterations(&mut iters);
        result.record_restarts(&mut restarts);
        let solved = result.reports.iter().filter(|r| r.outcome.solved()).count();
        assert_eq!(iters.len(), solved);
        assert_eq!(restarts.len(), 4);
        assert!(iters.distribution().is_some());
    }
}
