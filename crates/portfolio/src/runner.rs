//! True parallel execution of a heterogeneous portfolio.
//!
//! [`run_portfolio_threads`] and [`run_portfolio_rayon`] mirror the flat
//! multi-walk back-ends of `cbls-parallel` (`run_threads` / `run_rayon`):
//! walks share nothing but a [`StopControl`] flag, the first walk to reach
//! its target cost raises the flag, and every other walk stops at its next
//! poll — first-finisher semantics preserved, strategies heterogeneous.

use std::time::{Duration, Instant};

use cbls_core::{AdaptiveSearch, EvaluatorFactory, SearchOutcome, StopControl};
use cbls_perfmodel::DistributionAccumulator;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::portfolio::Portfolio;
use crate::schedule::RestartSchedule;

/// The outcome of one walk of a portfolio run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioWalkReport {
    /// Walk index (`0..portfolio.walks()`).
    pub walk_id: usize,
    /// Label of the member the walk ran.
    pub member_label: String,
    /// The 64-bit seed the walk's stream was derived from.
    pub seed: u64,
    /// The walk's search outcome.
    pub outcome: SearchOutcome,
}

/// The aggregate result of a portfolio run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioResult {
    /// Index of the winning walk (solved with the smallest elapsed time).
    pub winner: Option<usize>,
    /// Per-walk reports, ordered by walk index.
    pub reports: Vec<PortfolioWalkReport>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl PortfolioResult {
    /// Whether any walk found a solution.
    #[must_use]
    pub fn solved(&self) -> bool {
        self.winner.is_some()
    }

    /// The winning walk's report, if any walk solved the problem.
    #[must_use]
    pub fn winning_report(&self) -> Option<&PortfolioWalkReport> {
        self.winner.map(|w| &self.reports[w])
    }

    /// The winning walk's outcome, if any.
    #[must_use]
    pub fn winning_outcome(&self) -> Option<&SearchOutcome> {
        self.winning_report().map(|r| &r.outcome)
    }

    /// Iterations performed by the winning walk, if solved.
    #[must_use]
    pub fn winning_iterations(&self) -> Option<u64> {
        self.winning_outcome().map(|o| o.stats.iterations)
    }

    /// Total iterations across all walks (the run's total work).
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.outcome.stats.iterations)
            .sum()
    }

    /// Record every solved walk's iterations-to-solution into `acc` (the
    /// online distribution the order-statistics speedup predictor consumes).
    pub fn record_iterations(&self, acc: &mut DistributionAccumulator) {
        for report in &self.reports {
            if report.outcome.solved() {
                acc.record_count(report.outcome.stats.iterations);
            }
        }
    }

    /// Record every walk's restart count into `acc`.
    pub fn record_restarts(&self, acc: &mut DistributionAccumulator) {
        for report in &self.reports {
            acc.record_count(report.outcome.stats.restarts);
        }
    }
}

pub(crate) fn resolve_winner(reports: &[PortfolioWalkReport]) -> Option<usize> {
    // Same convention as the flat multi-walk runner: the "first finisher" is
    // the solved walk with the smallest recorded elapsed time, which keeps
    // the choice deterministic across schedulers.
    reports
        .iter()
        .filter(|r| r.outcome.solved())
        .min_by_key(|r| (r.outcome.elapsed, r.walk_id))
        .map(|r| r.walk_id)
}

pub(crate) fn run_single_walk<F>(
    factory: &F,
    portfolio: &Portfolio,
    stop: &StopControl,
    walk_id: usize,
) -> PortfolioWalkReport
where
    F: EvaluatorFactory,
{
    let member = portfolio.member_of(walk_id);
    let engine = AdaptiveSearch::new(member.search.clone());
    let seeds = portfolio.seeds();
    let mut evaluator = factory.build();
    let mut rng = seeds.rng_of(walk_id);
    let outcome = engine.solve_scheduled(&mut evaluator, &mut rng, stop, |r| {
        member.schedule.budget(r)
    });
    if outcome.solved() {
        // Completion is the only message the walks ever exchange.
        stop.request_stop();
    }
    PortfolioWalkReport {
        walk_id,
        member_label: member.label.clone(),
        seed: seeds.seed_of(walk_id),
        outcome,
    }
}

fn stop_of(portfolio: &Portfolio) -> StopControl {
    match portfolio.timeout() {
        Some(t) => StopControl::with_timeout(t),
        None => StopControl::new(),
    }
}

/// Run the portfolio with one OS thread per walk.
pub fn run_portfolio_threads<F>(factory: &F, portfolio: &Portfolio) -> PortfolioResult
where
    F: EvaluatorFactory,
{
    let started = Instant::now();
    let stop = stop_of(portfolio);

    let mut reports: Vec<PortfolioWalkReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..portfolio.walks())
            .map(|walk_id| {
                let stop = &stop;
                scope.spawn(move || run_single_walk(factory, portfolio, stop, walk_id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio walk thread panicked"))
            .collect()
    });
    reports.sort_by_key(|r| r.walk_id);

    PortfolioResult {
        winner: resolve_winner(&reports),
        reports,
        wall_time: started.elapsed(),
    }
}

/// Run the portfolio on the global rayon pool (for walk counts above the
/// physical core count).
pub fn run_portfolio_rayon<F>(factory: &F, portfolio: &Portfolio) -> PortfolioResult
where
    F: EvaluatorFactory,
{
    let started = Instant::now();
    let stop = stop_of(portfolio);

    let mut reports: Vec<PortfolioWalkReport> = (0..portfolio.walks())
        .into_par_iter()
        .map(|walk_id| run_single_walk(factory, portfolio, &stop, walk_id))
        .collect();
    reports.sort_by_key(|r| r.walk_id);

    PortfolioResult {
        winner: resolve_winner(&reports),
        reports,
        wall_time: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::PortfolioMember;
    use crate::schedule::Schedule;
    use cbls_core::{Evaluator, SearchConfig};

    #[derive(Clone)]
    struct Sort(usize);
    impl Evaluator for Sort {
        fn size(&self) -> usize {
            self.0
        }
        fn init(&mut self, perm: &[usize]) -> i64 {
            self.cost(perm)
        }
        fn cost(&self, perm: &[usize]) -> i64 {
            perm.iter().enumerate().filter(|&(i, &v)| i != v).count() as i64
        }
        fn cost_on_variable(&self, perm: &[usize], i: usize) -> i64 {
            i64::from(perm[i] != i)
        }
    }

    #[derive(Clone)]
    struct Hopeless(usize);
    impl Evaluator for Hopeless {
        fn size(&self) -> usize {
            self.0
        }
        fn init(&mut self, _perm: &[usize]) -> i64 {
            1
        }
        fn cost(&self, _perm: &[usize]) -> i64 {
            1
        }
        fn cost_on_variable(&self, _perm: &[usize], _i: usize) -> i64 {
            1
        }
    }

    fn mixed_portfolio(walks: usize) -> Portfolio {
        let search = SearchConfig::builder().stop_check_interval(4).build();
        let protos = vec![
            PortfolioMember::new("fixed", search.clone(), Schedule::fixed(10_000, 3)),
            PortfolioMember::new("luby", search.clone(), Schedule::luby(2_000, 15)),
            PortfolioMember::new("geom", search, Schedule::geometric(1_000, 2.0, 7)),
        ];
        Portfolio::cycled(&protos, walks).with_master_seed(42)
    }

    #[test]
    fn threads_backend_solves_and_labels_every_walk() {
        let portfolio = mixed_portfolio(4);
        let result = run_portfolio_threads(&|| Sort(24), &portfolio);
        assert!(result.solved());
        assert_eq!(result.reports.len(), 4);
        let winner = result.winner.unwrap();
        assert!(result.reports[winner].outcome.solved());
        for (i, r) in result.reports.iter().enumerate() {
            assert_eq!(r.walk_id, i);
            assert_eq!(r.member_label, portfolio.member_of(i).label);
            assert_eq!(r.seed, portfolio.seeds().seed_of(i));
        }
        assert!(result.total_iterations() >= result.winning_iterations().unwrap());
    }

    #[test]
    fn rayon_backend_matches_thread_backend_semantics() {
        let portfolio = mixed_portfolio(3);
        let a = run_portfolio_threads(&|| Sort(16), &portfolio);
        let b = run_portfolio_rayon(&|| Sort(16), &portfolio);
        assert!(a.solved() && b.solved());
        assert_eq!(a.reports.len(), b.reports.len());
        // walks are deterministic given (member, seed): walks that ran to
        // completion in both backends agree exactly
        for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
            if ra.outcome.solved() && rb.outcome.solved() {
                assert_eq!(ra.outcome.stats.iterations, rb.outcome.stats.iterations);
            }
        }
    }

    #[test]
    fn unsolvable_portfolio_reports_no_winner_and_respects_budgets() {
        let search = SearchConfig::default();
        let protos = vec![
            PortfolioMember::new("short", search.clone(), Schedule::fixed(100, 1)),
            PortfolioMember::new("luby", search, Schedule::luby(50, 5)),
        ];
        let portfolio = Portfolio::cycled(&protos, 2).with_master_seed(7);
        let result = run_portfolio_threads(&|| Hopeless(8), &portfolio);
        assert!(!result.solved());
        assert!(result.winning_report().is_none());
        // each walk consumed exactly its schedule's total budget
        assert_eq!(result.reports[0].outcome.stats.iterations, 200);
        assert_eq!(
            result.reports[1].outcome.stats.iterations,
            Schedule::luby(50, 5).total_budget()
        );
    }

    #[test]
    fn timeout_stops_hopeless_runs() {
        let search = SearchConfig::builder().stop_check_interval(1).build();
        let member = PortfolioMember::new("long", search, Schedule::fixed(u64::MAX / 8, 0));
        let portfolio = Portfolio::cycled(std::slice::from_ref(&member), 2)
            .with_timeout(Duration::from_millis(50));
        let started = Instant::now();
        let result = run_portfolio_threads(&|| Hopeless(8), &portfolio);
        assert!(!result.solved());
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn recorded_distributions_cover_solved_walks() {
        let portfolio = mixed_portfolio(4);
        let result = run_portfolio_rayon(&|| Sort(20), &portfolio);
        let mut iters = DistributionAccumulator::new();
        let mut restarts = DistributionAccumulator::new();
        result.record_iterations(&mut iters);
        result.record_restarts(&mut restarts);
        let solved = result.reports.iter().filter(|r| r.outcome.solved()).count();
        assert_eq!(iters.len(), solved);
        assert_eq!(restarts.len(), 4);
        assert!(iters.distribution().is_some());
    }
}
