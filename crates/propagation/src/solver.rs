//! Chronological backtracking over permutations with forward checks.

use serde::{Deserialize, Serialize};

/// A permutation CSP described by an incremental consistency check.
///
/// The solver assigns variables in index order; a candidate value for
/// variable `depth` is accepted iff it has not been used by an earlier
/// variable (all-different, enforced by the solver) and
/// [`consistent`](PermutationConstraint::consistent) accepts it given the
/// already-assigned prefix.
pub trait PermutationConstraint: Send + Sync {
    /// Number of variables (and values) of the permutation.
    fn size(&self) -> usize;

    /// Whether assigning `value` to variable `prefix.len()` is consistent
    /// with the assigned prefix.
    fn consistent(&self, prefix: &[usize], value: usize) -> bool;

    /// Problem name for reports.
    fn name(&self) -> &str {
        "permutation-csp"
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// A solution was found.
    Satisfiable,
    /// The full tree was exhausted without finding a solution.
    Unsatisfiable,
    /// The node budget ran out before the search finished.
    BudgetExhausted,
}

/// Result of a backtracking run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// Final status.
    pub status: SolveStatus,
    /// The first solution found, if any.
    pub solution: Option<Vec<usize>>,
    /// Number of solutions found (only > 1 when counting).
    pub solutions_found: u64,
    /// Search-tree nodes visited (value assignments attempted).
    pub nodes: u64,
    /// Backtracks performed.
    pub backtracks: u64,
}

impl SolveOutcome {
    /// Whether a solution was found.
    #[must_use]
    pub fn satisfiable(&self) -> bool {
        matches!(self.status, SolveStatus::Satisfiable)
    }
}

/// A chronological backtracking solver with a node budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BacktrackingSolver {
    /// Maximum number of nodes (assignment attempts) before giving up.
    pub max_nodes: u64,
}

impl Default for BacktrackingSolver {
    fn default() -> Self {
        Self {
            max_nodes: 50_000_000,
        }
    }
}

impl BacktrackingSolver {
    /// Create a solver with the given node budget.
    #[must_use]
    pub fn with_budget(max_nodes: u64) -> Self {
        assert!(max_nodes > 0, "the node budget must be positive");
        Self { max_nodes }
    }

    /// Find the first solution of `problem`.
    #[must_use]
    pub fn solve<C: PermutationConstraint + ?Sized>(&self, problem: &C) -> SolveOutcome {
        self.search(problem, 1)
    }

    /// Count up to `limit` solutions of `problem`.
    #[must_use]
    pub fn count_solutions<C: PermutationConstraint + ?Sized>(
        &self,
        problem: &C,
        limit: u64,
    ) -> SolveOutcome {
        assert!(limit > 0, "the solution limit must be positive");
        self.search(problem, limit)
    }

    fn search<C: PermutationConstraint + ?Sized>(
        &self,
        problem: &C,
        solution_limit: u64,
    ) -> SolveOutcome {
        let n = problem.size();
        let mut outcome = SolveOutcome {
            status: SolveStatus::Unsatisfiable,
            solution: None,
            solutions_found: 0,
            nodes: 0,
            backtracks: 0,
        };
        if n == 0 {
            // the empty permutation is the unique (vacuous) solution
            outcome.status = SolveStatus::Satisfiable;
            outcome.solution = Some(Vec::new());
            outcome.solutions_found = 1;
            return outcome;
        }

        let mut prefix: Vec<usize> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        // next value to try at each depth
        let mut cursor = vec![0usize; n + 1];

        loop {
            let depth = prefix.len();
            if depth == n {
                // full assignment: record the solution
                outcome.solutions_found += 1;
                if outcome.solution.is_none() {
                    outcome.solution = Some(prefix.clone());
                }
                outcome.status = SolveStatus::Satisfiable;
                if outcome.solutions_found >= solution_limit {
                    return outcome;
                }
                // backtrack to look for more
                let last = prefix.pop().expect("depth == n >= 1");
                used[last] = false;
                outcome.backtracks += 1;
                continue;
            }

            // try the next untested value at this depth
            let mut advanced = false;
            while cursor[depth] < n {
                let value = cursor[depth];
                cursor[depth] += 1;
                if used[value] {
                    continue;
                }
                outcome.nodes += 1;
                if outcome.nodes > self.max_nodes {
                    outcome.status = if outcome.solutions_found > 0 {
                        SolveStatus::Satisfiable
                    } else {
                        SolveStatus::BudgetExhausted
                    };
                    return outcome;
                }
                if problem.consistent(&prefix, value) {
                    prefix.push(value);
                    used[value] = true;
                    cursor[depth + 1] = 0;
                    advanced = true;
                    break;
                }
            }
            if advanced {
                continue;
            }

            // exhausted this depth: backtrack
            if depth == 0 {
                return outcome;
            }
            let last = prefix.pop().expect("depth > 0");
            used[last] = false;
            outcome.backtracks += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts every permutation (only all-different applies).
    struct AnyPermutation(usize);
    impl PermutationConstraint for AnyPermutation {
        fn size(&self) -> usize {
            self.0
        }
        fn consistent(&self, _prefix: &[usize], _value: usize) -> bool {
            true
        }
    }

    /// Accepts nothing as soon as one variable is assigned.
    struct Impossible(usize);
    impl PermutationConstraint for Impossible {
        fn size(&self) -> usize {
            self.0
        }
        fn consistent(&self, _prefix: &[usize], _value: usize) -> bool {
            false
        }
    }

    #[test]
    fn counts_all_permutations() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.count_solutions(&AnyPermutation(5), u64::MAX / 2);
        assert_eq!(outcome.solutions_found, 120);
        assert!(outcome.satisfiable());
        assert_eq!(outcome.status, SolveStatus::Satisfiable);
    }

    #[test]
    fn finds_first_solution_quickly() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&AnyPermutation(6));
        assert!(outcome.satisfiable());
        assert_eq!(outcome.solution, Some(vec![0, 1, 2, 3, 4, 5]));
        assert_eq!(outcome.solutions_found, 1);
    }

    #[test]
    fn unsatisfiable_problems_are_reported() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&Impossible(4));
        assert!(!outcome.satisfiable());
        assert_eq!(outcome.status, SolveStatus::Unsatisfiable);
        assert_eq!(outcome.solution, None);
        assert!(outcome.nodes > 0);
    }

    #[test]
    fn node_budget_is_respected() {
        // A budget smaller than the depth of the tree: no solution can be
        // completed before the budget runs out.
        let solver = BacktrackingSolver::with_budget(5);
        let outcome = solver.count_solutions(&AnyPermutation(8), u64::MAX / 2);
        assert_eq!(outcome.status, SolveStatus::BudgetExhausted);
        assert!(outcome.nodes <= 6);
        assert_eq!(outcome.solutions_found, 0);

        // With a budget that allows some solutions but not the full tree, the
        // run is cut short but still reports satisfiability.
        let solver = BacktrackingSolver::with_budget(100);
        let outcome = solver.count_solutions(&AnyPermutation(8), u64::MAX / 2);
        assert_eq!(outcome.status, SolveStatus::Satisfiable);
        assert!(outcome.solutions_found >= 1);
    }

    #[test]
    fn empty_problem_is_vacuously_satisfiable() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&AnyPermutation(0));
        assert!(outcome.satisfiable());
        assert_eq!(outcome.solution, Some(vec![]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_is_rejected() {
        let _ = BacktrackingSolver::with_budget(0);
    }
}
