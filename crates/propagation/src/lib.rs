//! # cbls-propagation — a baseline propagation-based solver
//!
//! The paper's introduction motivates local search by contrast with
//! "classical propagation-based solvers", which cannot reach the instance
//! sizes local search handles.  To make that comparison concrete (and to
//! cross-validate the local-search models on small instances), this crate
//! provides a small but complete chronological-backtracking solver for
//! permutation CSPs with:
//!
//! * an all-different global constraint enforced structurally (values are
//!   consumed from a bitset as the permutation prefix grows),
//! * problem-specific forward checks supplied through
//!   [`PermutationConstraint`],
//! * node/backtrack accounting and a node budget, so the exponential blow-up
//!   can be *measured* rather than merely asserted (benchmark `baseline`).
//!
//! Constraints are provided for the models used in the comparison:
//! [`QueensConstraint`], [`CostasConstraint`], [`AllIntervalConstraint`] and
//! [`LangfordConstraint`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod solver;

pub use constraints::{
    AllIntervalConstraint, CostasConstraint, LangfordConstraint, QueensConstraint,
};
pub use solver::{BacktrackingSolver, PermutationConstraint, SolveOutcome, SolveStatus};
