//! Forward-checking constraints for the benchmark models.

use crate::solver::PermutationConstraint;

/// N-Queens: no two queens on the same diagonal (rows/columns are handled by
/// the permutation structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueensConstraint {
    n: usize,
}

impl QueensConstraint {
    /// Create an `n`-queens constraint.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl PermutationConstraint for QueensConstraint {
    fn size(&self) -> usize {
        self.n
    }

    fn consistent(&self, prefix: &[usize], value: usize) -> bool {
        let col = prefix.len();
        prefix.iter().enumerate().all(|(c, &row)| {
            let dc = col - c;
            row.abs_diff(value) != dc
        })
    }

    fn name(&self) -> &str {
        "n-queens"
    }
}

/// Costas arrays: all difference vectors distinct — incrementally, for every
/// distance `d`, the new difference `value − prefix[col−d]` must not already
/// occur at distance `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostasConstraint {
    n: usize,
}

impl CostasConstraint {
    /// Create a Costas constraint of order `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl PermutationConstraint for CostasConstraint {
    fn size(&self) -> usize {
        self.n
    }

    fn consistent(&self, prefix: &[usize], value: usize) -> bool {
        let col = prefix.len();
        // For each distance d ending at the new column, the difference must
        // be new among the differences at that distance.
        for d in 1..=col {
            let new_diff = value as i64 - prefix[col - d] as i64;
            // compare against every earlier pair at distance d
            for hi in d..col {
                let old_diff = prefix[hi] as i64 - prefix[hi - d] as i64;
                if old_diff == new_diff {
                    return false;
                }
            }
        }
        true
    }

    fn name(&self) -> &str {
        "costas-array"
    }
}

/// All-interval series: adjacent differences must all be distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllIntervalConstraint {
    n: usize,
}

impl AllIntervalConstraint {
    /// Create an all-interval constraint of size `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl PermutationConstraint for AllIntervalConstraint {
    fn size(&self) -> usize {
        self.n
    }

    fn consistent(&self, prefix: &[usize], value: usize) -> bool {
        let col = prefix.len();
        if col == 0 {
            return true;
        }
        let new_diff = prefix[col - 1].abs_diff(value);
        if new_diff == 0 {
            return false;
        }
        // the new adjacent difference must not repeat an earlier one
        (1..col).all(|i| prefix[i - 1].abs_diff(prefix[i]) != new_diff)
    }

    fn name(&self) -> &str {
        "all-interval"
    }
}

/// Langford pairs L(2, n) in the slot-content encoding: the permutation maps
/// items (two per number) to slots; here we use the direct CSP formulation
/// where variable `2k`/`2k+1` are the slots of the two copies of number
/// `k+1`, and the copies must sit `k + 2` slots apart with the first copy
/// before the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LangfordConstraint {
    n: usize,
}

impl LangfordConstraint {
    /// Create an L(2, n) constraint.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl PermutationConstraint for LangfordConstraint {
    fn size(&self) -> usize {
        2 * self.n
    }

    fn consistent(&self, prefix: &[usize], value: usize) -> bool {
        let item = prefix.len();
        let number = item / 2; // 0-based number index
        if item % 2 == 0 {
            // first copy: always locally consistent (the gap is checked when
            // the second copy is placed), but prune symmetric duplicates by
            // requiring room for the second copy
            value + number + 2 < 2 * self.n || {
                // the partner slot would overflow: check the other direction
                value >= number + 2
            }
        } else {
            // second copy: must be exactly number + 2 slots away from the
            // first copy
            let first = prefix[item - 1];
            first.abs_diff(value) == number + 2
        }
    }

    fn name(&self) -> &str {
        "langford"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::BacktrackingSolver;

    #[test]
    fn queens_solution_counts_match_the_literature() {
        let solver = BacktrackingSolver::default();
        // (n, number of solutions)
        for (n, count) in [(4usize, 2u64), (5, 10), (6, 4), (7, 40), (8, 92)] {
            let outcome = solver.count_solutions(&QueensConstraint::new(n), u64::MAX / 2);
            assert_eq!(outcome.solutions_found, count, "n = {n}");
        }
    }

    #[test]
    fn costas_counts_match_the_literature() {
        let solver = BacktrackingSolver::default();
        // Known counts of Costas arrays (including symmetries).
        for (n, count) in [(1usize, 1u64), (2, 2), (3, 4), (4, 12), (5, 40), (6, 116)] {
            let outcome = solver.count_solutions(&CostasConstraint::new(n), u64::MAX / 2);
            assert_eq!(outcome.solutions_found, count, "n = {n}");
        }
    }

    #[test]
    fn costas_solutions_satisfy_the_definition() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&CostasConstraint::new(7));
        let perm = outcome.solution.expect("costas 7 exists");
        // check all difference vectors distinct per distance
        let n = perm.len();
        for d in 1..n {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n - d {
                let diff = perm[i + d] as i64 - perm[i] as i64;
                assert!(seen.insert(diff), "duplicate difference at distance {d}");
            }
        }
    }

    #[test]
    fn all_interval_solutions_have_distinct_intervals() {
        let solver = BacktrackingSolver::default();
        for n in [3usize, 5, 8, 10] {
            let outcome = solver.solve(&AllIntervalConstraint::new(n));
            let perm = outcome
                .solution
                .unwrap_or_else(|| panic!("AIS({n}) exists"));
            let mut seen = std::collections::HashSet::new();
            for w in perm.windows(2) {
                assert!(seen.insert(w[0].abs_diff(w[1])));
            }
        }
    }

    #[test]
    fn langford_satisfiability_follows_the_rule() {
        let solver = BacktrackingSolver::default();
        for (n, satisfiable) in [(3usize, true), (4, true), (5, false), (6, false), (7, true)] {
            let outcome = solver.solve(&LangfordConstraint::new(n));
            assert_eq!(outcome.satisfiable(), satisfiable, "L(2,{n})");
        }
    }

    #[test]
    fn langford_solutions_have_correct_gaps() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&LangfordConstraint::new(4));
        let perm = outcome.solution.expect("L(2,4) exists");
        for k in 0..4 {
            assert_eq!(
                perm[2 * k].abs_diff(perm[2 * k + 1]),
                k + 2,
                "number {}",
                k + 1
            );
        }
    }

    #[test]
    fn queens_first_solution_is_valid() {
        let solver = BacktrackingSolver::default();
        let outcome = solver.solve(&QueensConstraint::new(10));
        let perm = outcome.solution.expect("10-queens exists");
        for a in 0..10 {
            for b in a + 1..10 {
                assert_ne!(perm[a].abs_diff(perm[b]), b - a);
            }
        }
    }

    #[test]
    fn exponential_growth_is_observable() {
        // The baseline's node counts grow sharply with n — the quantitative
        // form of the paper's "beyond the reach of propagation-based solvers".
        let solver = BacktrackingSolver::default();
        let nodes_10 = solver.solve(&CostasConstraint::new(10)).nodes;
        let nodes_12 = solver.solve(&CostasConstraint::new(12)).nodes;
        assert!(nodes_12 > nodes_10);
    }
}
