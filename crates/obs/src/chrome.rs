//! Chrome `trace_event` export: turn a [`TraceRecording`] into a JSON
//! document loadable by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! The mapping uses the trace-event format's object form
//! (`{"traceEvents": [...]}`) with one *process* per recording and one
//! *thread track per walk* (`tid` = walk id):
//!
//! | recording item              | trace event                                  |
//! |-----------------------------|----------------------------------------------|
//! | process / walk identity     | `ph:"M"` metadata (`process_name`, `thread_name`) |
//! | walk lifetime               | `ph:"X"` complete slice named `walk`          |
//! | sampled phase span          | `ph:"X"` complete slice named after the phase |
//! | restart marker              | `ph:"i"` thread-scoped instant                |
//! | cost trajectory point       | `ph:"C"` counter event (`cost[walk N]`)       |
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds with fractional
//! nanosecond precision, as the format requires.  The emitter writes JSON by
//! hand (the vendored serde shim has no general value tree on the serialize
//! side); [`validate_chrome_trace`] parses the document back through the
//! shim's JSON parser and checks the structural invariants the viewers rely
//! on, which is what the CI `obs` job runs against recorded benchmarks.

use serde::__private::{DeError, Value};
use serde::Deserialize;

use crate::trace::{TraceEventKind, TraceRecording};

/// Microseconds-with-fraction rendering of a nanosecond timestamp (the
/// trace-event format wants `ts`/`dur` in µs; three decimals keep full
/// nanosecond precision without floating-point drift).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Minimal JSON string escaping for the label strings we emit.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `recording` as Chrome `trace_event` JSON (object form).
///
/// Every walk gets a named thread track; sampled phase spans appear as
/// complete slices on their walk's track, restarts as instants, and the
/// cost trajectory as per-walk counter series.
#[must_use]
pub fn chrome_trace_json(recording: &TraceRecording) -> String {
    let mut events: Vec<String> = Vec::new();
    let process = format!(
        "cbls {} ({}, seed {})",
        recording.meta.benchmark, recording.meta.backend, recording.meta.master_seed
    );
    events.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{{"name":"{}"}}}}"#,
        escape(&process)
    ));
    for walk in &recording.summary.per_walk {
        let label = if walk.label.is_empty() {
            format!("walk {} (seed {})", walk.walk_id, walk.seed)
        } else {
            format!(
                "walk {} [{}] (seed {})",
                walk.walk_id, walk.label, walk.seed
            )
        };
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"{}"}}}}"#,
            walk.walk_id,
            escape(&label)
        ));
    }

    // Walk lifetimes as one top-level slice per track.
    for walk in 0..recording.meta.walks {
        let started = recording
            .lifecycle
            .iter()
            .find(|e| e.walk_id == walk && matches!(e.kind, TraceEventKind::Started { .. }));
        let finished = recording
            .lifecycle
            .iter()
            .find(|e| e.walk_id == walk && matches!(e.kind, TraceEventKind::Finished { .. }));
        if let (Some(s), Some(f)) = (started, finished) {
            let solved = matches!(f.kind, TraceEventKind::Finished { solved: true, .. });
            events.push(format!(
                r#"{{"name":"walk","cat":"lifecycle","ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"args":{{"solved":{}}}}}"#,
                walk,
                micros(s.t_nanos),
                micros(f.t_nanos.saturating_sub(s.t_nanos)),
                solved
            ));
        }
    }

    for event in &recording.samples {
        match event.kind {
            TraceEventKind::PhaseSpan { phase, dur_nanos } => {
                events.push(format!(
                    r#"{{"name":"{}","cat":"phase","ph":"X","pid":0,"tid":{},"ts":{},"dur":{}}}"#,
                    phase.name(),
                    event.walk_id,
                    micros(event.t_nanos),
                    micros(dur_nanos)
                ));
            }
            TraceEventKind::Restarted { restart } => {
                events.push(format!(
                    r#"{{"name":"restart {}","cat":"restart","ph":"i","s":"t","pid":0,"tid":{},"ts":{}}}"#,
                    restart,
                    event.walk_id,
                    micros(event.t_nanos)
                ));
            }
            TraceEventKind::Cost { cost, .. } => {
                events.push(format!(
                    r#"{{"name":"cost[walk {}]","cat":"cost","ph":"C","pid":0,"tid":{},"ts":{},"args":{{"cost":{}}}}}"#,
                    event.walk_id,
                    event.walk_id,
                    micros(event.t_nanos),
                    cost
                ));
            }
            TraceEventKind::Faulted { fault, attempt } => {
                events.push(format!(
                    r#"{{"name":"fault: {:?}","cat":"fault","ph":"i","s":"t","pid":0,"tid":{},"ts":{},"args":{{"attempt":{}}}}}"#,
                    fault,
                    event.walk_id,
                    micros(event.t_nanos),
                    attempt
                ));
            }
            TraceEventKind::Retried { attempt, seed } => {
                events.push(format!(
                    r#"{{"name":"retry {}","cat":"fault","ph":"i","s":"t","pid":0,"tid":{},"ts":{},"args":{{"seed":{}}}}}"#,
                    attempt,
                    event.walk_id,
                    micros(event.t_nanos),
                    seed
                ));
            }
            // Lifecycle kinds never appear in the sampled stream.
            TraceEventKind::Started { .. } | TraceEventKind::Finished { .. } => {}
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// One parsed trace event, as far as validation cares.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase letter (`M`, `X`, `i`, `C`, ...).
    pub ph: String,
    /// Process id.
    pub pid: i64,
    /// Thread id (walk id in this exporter's mapping).
    pub tid: i64,
    /// Timestamp in microseconds (absent on metadata events).
    pub ts: Option<f64>,
    /// Duration in microseconds (complete events only).
    pub dur: Option<f64>,
    /// Category (absent on metadata events).
    pub cat: Option<String>,
    /// The `args.name` payload of metadata events.
    pub meta_name: Option<String>,
}

impl Deserialize for ChromeEvent {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let field = |key: &str| -> Result<&Value, DeError> {
            v.get(key)
                .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, DeError> {
            v.get(key).map(f64::from_json_value).transpose()
        };
        Ok(Self {
            name: String::from_json_value(field("name")?)?,
            ph: String::from_json_value(field("ph")?)?,
            pid: i64::from_json_value(field("pid")?)?,
            tid: i64::from_json_value(field("tid")?)?,
            ts: opt_f64("ts")?,
            dur: opt_f64("dur")?,
            cat: v.get("cat").map(String::from_json_value).transpose()?,
            meta_name: v
                .get("args")
                .and_then(|args| args.get("name"))
                .map(String::from_json_value)
                .transpose()?,
        })
    }
}

/// A parsed `{"traceEvents": [...]}` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// The events, in document order.
    pub events: Vec<ChromeEvent>,
}

impl Deserialize for ChromeTrace {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let events = v
            .get("traceEvents")
            .ok_or_else(|| DeError::new("missing field `traceEvents`"))?;
        Ok(Self {
            events: Vec::<ChromeEvent>::from_json_value(events)?,
        })
    }
}

/// Structural statistics of a validated Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total events in the document.
    pub events: usize,
    /// Distinct walk tracks (named threads).
    pub walk_tracks: usize,
    /// `ph:"X"` slices in the `phase` category.
    pub phase_slices: usize,
    /// `ph:"X"` walk-lifetime slices.
    pub lifetime_slices: usize,
    /// `ph:"C"` cost counter samples.
    pub cost_samples: usize,
    /// `ph:"i"` restart instants.
    pub restart_instants: usize,
}

/// Parse and validate a Chrome trace document produced by
/// [`chrome_trace_json`]: well-formed JSON, a process name, one named track
/// per walk, non-negative timestamps/durations, and every slice on a named
/// track.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceStats, String> {
    let trace: ChromeTrace =
        serde_json::from_str(json).map_err(|e| format!("unparsable trace JSON: {e}"))?;
    if trace.events.is_empty() {
        return Err("trace has no events".to_string());
    }
    let mut stats = ChromeTraceStats {
        events: trace.events.len(),
        walk_tracks: 0,
        phase_slices: 0,
        lifetime_slices: 0,
        cost_samples: 0,
        restart_instants: 0,
    };
    let mut has_process_name = false;
    let mut named_tracks: Vec<i64> = Vec::new();
    for event in &trace.events {
        match event.ph.as_str() {
            "M" => match event.name.as_str() {
                "process_name" => has_process_name = true,
                "thread_name" => {
                    if event.meta_name.as_deref().unwrap_or("").is_empty() {
                        return Err(format!("thread_name for tid {} is empty", event.tid));
                    }
                    if !named_tracks.contains(&event.tid) {
                        named_tracks.push(event.tid);
                    }
                }
                other => return Err(format!("unknown metadata event {other:?}")),
            },
            "X" => {
                let ts = event
                    .ts
                    .ok_or_else(|| format!("slice {:?} has no ts", event.name))?;
                let dur = event
                    .dur
                    .ok_or_else(|| format!("slice {:?} has no dur", event.name))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("slice {:?} has negative ts/dur", event.name));
                }
                if !named_tracks.contains(&event.tid) {
                    return Err(format!(
                        "slice {:?} sits on unnamed track tid {}",
                        event.name, event.tid
                    ));
                }
                if event.cat.as_deref() == Some("phase") {
                    stats.phase_slices += 1;
                } else {
                    stats.lifetime_slices += 1;
                }
            }
            "i" => {
                if event.ts.is_none() {
                    return Err(format!("instant {:?} has no ts", event.name));
                }
                stats.restart_instants += 1;
            }
            "C" => {
                if event.ts.is_none() {
                    return Err(format!("counter {:?} has no ts", event.name));
                }
                stats.cost_samples += 1;
            }
            other => return Err(format!("unexpected phase letter {other:?}")),
        }
    }
    if !has_process_name {
        return Err("no process_name metadata event".to_string());
    }
    stats.walk_tracks = named_tracks.len();
    if stats.walk_tracks == 0 {
        return Err("no walk tracks (thread_name metadata) found".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::trace::{TraceEvent, TraceMeta, TraceSummary, WalkSummary, TRACE_SCHEMA};
    use cbls_core::SearchPhase;

    fn recording_with_samples() -> TraceRecording {
        TraceRecording {
            schema: TRACE_SCHEMA.to_string(),
            meta: TraceMeta {
                benchmark: "queens-8".to_string(),
                backend: "sequential".to_string(),
                master_seed: 42,
                walks: 2,
            },
            wall_nanos: 10_000,
            lifecycle: vec![
                TraceEvent {
                    t_nanos: 100,
                    walk_id: 0,
                    kind: TraceEventKind::Started { seed: 1 },
                },
                TraceEvent {
                    t_nanos: 150,
                    walk_id: 1,
                    kind: TraceEventKind::Started { seed: 2 },
                },
                TraceEvent {
                    t_nanos: 9_000,
                    walk_id: 0,
                    kind: TraceEventKind::Finished {
                        solved: true,
                        iterations: 40,
                        cost: 0,
                    },
                },
                TraceEvent {
                    t_nanos: 9_500,
                    walk_id: 1,
                    kind: TraceEventKind::Finished {
                        solved: false,
                        iterations: 44,
                        cost: 2,
                    },
                },
            ],
            samples: vec![
                TraceEvent {
                    t_nanos: 500,
                    walk_id: 0,
                    kind: TraceEventKind::PhaseSpan {
                        phase: SearchPhase::CandidateScan,
                        dur_nanos: 300,
                    },
                },
                TraceEvent {
                    t_nanos: 900,
                    walk_id: 1,
                    kind: TraceEventKind::Restarted { restart: 1 },
                },
                TraceEvent {
                    t_nanos: 1_200,
                    walk_id: 0,
                    kind: TraceEventKind::Cost {
                        iteration: 10,
                        cost: 3,
                    },
                },
            ],
            dropped_samples: 0,
            sample_stride: 1,
            phase_profiles: vec![],
            metrics: MetricsSnapshot {
                counters: vec![],
                gauges: vec![],
                histograms: vec![],
            },
            summary: TraceSummary {
                walks: 2,
                solved_walks: 1,
                winner: Some(0),
                total_iterations: 84,
                total_restarts: 1,
                total_improvements: 1,
                per_walk: vec![
                    WalkSummary {
                        walk_id: 0,
                        label: String::new(),
                        seed: 1,
                        solved: true,
                        iterations: 40,
                        restarts: 0,
                        improvements: 1,
                        best_cost: 0,
                    },
                    WalkSummary {
                        walk_id: 1,
                        label: "luby".to_string(),
                        seed: 2,
                        solved: false,
                        iterations: 44,
                        restarts: 1,
                        improvements: 0,
                        best_cost: 2,
                    },
                ],
            },
        }
    }

    #[test]
    fn export_validates_and_counts_structures() {
        let rec = recording_with_samples();
        let json = chrome_trace_json(&rec);
        let stats = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(stats.walk_tracks, 2);
        assert_eq!(stats.phase_slices, 1);
        assert_eq!(stats.lifetime_slices, 2);
        assert_eq!(stats.cost_samples, 1);
        assert_eq!(stats.restart_instants, 1);
    }

    #[test]
    fn micros_preserves_nanosecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[]}"#).is_err());
        // A slice on an unnamed track is rejected.
        let bad = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"p"}},
            {"name":"walk","ph":"X","pid":0,"tid":7,"ts":1.0,"dur":2.0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unnamed"));
    }
}
