//! `cbls-trace` — record and inspect Adaptive Search trace recordings.
//!
//! ```text
//! cbls-trace record --bench costas-14 [--walks N] [--seed S]
//!                   [--backend sequential|threads|rayon] [--quick]
//!                   [--no-phases] [--capacity N] [--complete]
//!                   [--timeout-ms T] [--out FILE] [--chrome FILE]
//!                   [--jsonl FILE]
//! cbls-trace summary FILE
//! cbls-trace chrome FILE [--out FILE]
//! cbls-trace jsonl FILE [--out FILE]
//! cbls-trace diff FILE_A FILE_B
//! cbls-trace validate FILE [--chrome]
//! ```
//!
//! `record` runs a benchmark batch with a [`FlightRecorder`] attached and
//! saves the [`TraceRecording`] as JSON; the other subcommands load such a
//! file back and export or render it.

use std::process::ExitCode;
use std::time::Duration;

use cbls_obs::{
    chrome_trace_json, render_diff, render_summary, validate_chrome_trace, FlightRecorder,
    RecorderConfig, TraceMeta, TraceRecording,
};
use cbls_parallel::{RayonExecutor, SequentialExecutor, ThreadsExecutor, WalkBatch, WalkExecutor};
use cbls_problems::Benchmark;

const USAGE: &str = "usage:
  cbls-trace record --bench <id> [--walks N] [--seed S]
                    [--backend sequential|threads|rayon] [--quick]
                    [--no-phases] [--capacity N] [--complete]
                    [--timeout-ms T] [--out FILE] [--chrome FILE] [--jsonl FILE]
  cbls-trace summary <recording.json>
  cbls-trace chrome <recording.json> [--out FILE]
  cbls-trace jsonl <recording.json> [--out FILE]
  cbls-trace diff <a.json> <b.json>
  cbls-trace validate <file> [--chrome]

benchmark ids follow the catalog: queens-64, costas-14, magic-square-10,
all-interval-16, langford-12, partition-32, alpha, perfect-square-order9,
magic-sequence-20, golomb-8, coloring-60x4, qcp-10, ...";

fn fail(message: &str) -> ExitCode {
    eprintln!("cbls-trace: {message}");
    ExitCode::FAILURE
}

/// The `record` subcommand's parsed flags.
struct RecordArgs {
    bench: Benchmark,
    walks: usize,
    seed: u64,
    backend: String,
    phases: bool,
    capacity: usize,
    complete: bool,
    timeout_ms: Option<u64>,
    out: Option<String>,
    chrome: Option<String>,
    jsonl: Option<String>,
}

fn parse_record(args: &[String]) -> Result<RecordArgs, String> {
    let mut bench: Option<Benchmark> = None;
    let mut walks = 4usize;
    let mut seed = 42u64;
    let mut backend = "sequential".to_string();
    let mut phases = true;
    let mut capacity = 4096usize;
    let mut complete = false;
    let mut timeout_ms: Option<u64> = None;
    let mut out = None;
    let mut chrome = None;
    let mut jsonl = None;

    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        let flag = args[*i].clone();
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                let id = value(&mut i)?;
                bench = Some(
                    Benchmark::from_id(&id).ok_or_else(|| format!("unknown benchmark {id:?}"))?,
                );
            }
            "--walks" => {
                walks = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --walks".to_string())?;
            }
            "--seed" => {
                seed = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--backend" => backend = value(&mut i)?,
            "--capacity" => {
                capacity = value(&mut i)?
                    .parse()
                    .map_err(|_| "bad --capacity".to_string())?;
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|_| "bad --timeout-ms".to_string())?,
                );
            }
            "--quick" => {
                // CI smoke preset: a tiny batch with a hard wall-clock cap.
                walks = 2;
                timeout_ms = Some(timeout_ms.unwrap_or(10_000));
            }
            "--no-phases" => phases = false,
            "--complete" => complete = true,
            "--out" => out = Some(value(&mut i)?),
            "--chrome" => chrome = Some(value(&mut i)?),
            "--jsonl" => jsonl = Some(value(&mut i)?),
            other => return Err(format!("unknown record flag {other:?}")),
        }
        i += 1;
    }
    let bench = bench.ok_or_else(|| "record needs --bench <id>".to_string())?;
    if !matches!(backend.as_str(), "sequential" | "threads" | "rayon") {
        return Err(format!("unknown backend {backend:?}"));
    }
    Ok(RecordArgs {
        bench,
        walks,
        seed,
        backend,
        phases,
        capacity,
        complete,
        timeout_ms,
        out,
        chrome,
        jsonl,
    })
}

fn record(args: &RecordArgs) -> Result<TraceRecording, String> {
    let bench = args.bench.clone();
    let factory = || bench.build();
    let mut batch = WalkBatch::uniform(args.seed, &bench.tuned_config(), args.walks);
    if args.complete {
        batch = batch.run_to_completion();
    }
    if let Some(ms) = args.timeout_ms {
        batch = batch.with_timeout(Duration::from_millis(ms));
    }
    let config = RecorderConfig {
        capacity: args.capacity,
        phases: args.phases,
        ..RecorderConfig::default()
    };
    let recorder = FlightRecorder::new(
        TraceMeta {
            benchmark: bench.id(),
            backend: args.backend.clone(),
            master_seed: args.seed,
            walks: args.walks,
        },
        config,
    );
    let execution = match args.backend.as_str() {
        "sequential" => SequentialExecutor.execute_with_telemetry(&factory, &batch, &recorder),
        "threads" => ThreadsExecutor.execute_with_telemetry(&factory, &batch, &recorder),
        "rayon" => RayonExecutor.execute_with_telemetry(&factory, &batch, &recorder),
        other => return Err(format!("unknown backend {other:?}")),
    };
    let recording = recorder.finish(&execution);
    recording.validate()?;
    Ok(recording)
}

fn load(path: &str) -> Result<TraceRecording, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let recording: TraceRecording =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?;
    recording.validate()?;
    Ok(recording)
}

fn save(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path:?}: {e}"))
}

fn emit(out: Option<&str>, contents: &str) -> Result<(), String> {
    match out {
        Some(path) => save(path, contents),
        None => {
            print!("{contents}");
            Ok(())
        }
    }
}

/// `FILE [--out FILE]`-shaped argument lists (`chrome` / `jsonl`).
fn parse_export(args: &[String]) -> Result<(String, Option<String>), String> {
    match args {
        [file] => Ok((file.clone(), None)),
        [file, flag, out] if flag == "--out" => Ok((file.clone(), Some(out.clone()))),
        _ => Err("expected FILE [--out FILE]".to_string()),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((command, rest)) => (command.as_str(), rest),
        None => return Err(format!("missing subcommand\n{USAGE}")),
    };
    match command {
        "record" => {
            let parsed = parse_record(rest)?;
            let recording = record(&parsed)?;
            if let Some(path) = parsed.chrome.as_deref() {
                let json = chrome_trace_json(&recording);
                validate_chrome_trace(&json)?;
                save(path, &json)?;
            }
            if let Some(path) = parsed.jsonl.as_deref() {
                save(path, &recording.to_jsonl())?;
            }
            let json = serde_json::to_string_pretty(&recording)
                .map_err(|e| format!("cannot serialize recording: {e}"))?;
            match parsed.out.as_deref() {
                Some(path) => {
                    save(path, &json)?;
                    println!("{}", render_summary(&recording));
                }
                // No --out: the recording itself goes to stdout.
                None => println!("{json}"),
            }
            Ok(())
        }
        "summary" => match rest {
            [file] => {
                print!("{}", render_summary(&load(file)?));
                Ok(())
            }
            _ => Err("summary takes exactly one file".to_string()),
        },
        "chrome" => {
            let (file, out) = parse_export(rest)?;
            let json = chrome_trace_json(&load(&file)?);
            validate_chrome_trace(&json)?;
            emit(out.as_deref(), &json)
        }
        "jsonl" => {
            let (file, out) = parse_export(rest)?;
            emit(out.as_deref(), &load(&file)?.to_jsonl())
        }
        "diff" => match rest {
            [a, b] => {
                print!("{}", render_diff(&load(a)?, &load(b)?));
                Ok(())
            }
            _ => Err("diff takes exactly two files".to_string()),
        },
        "validate" => match rest {
            [file] => {
                let recording = load(file)?;
                println!(
                    "ok: {} ({} walks, {} lifecycle events, {} samples)",
                    recording.schema,
                    recording.meta.walks,
                    recording.lifecycle.len(),
                    recording.samples.len()
                );
                Ok(())
            }
            [file, flag] if flag == "--chrome" => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file:?}: {e}"))?;
                let stats = validate_chrome_trace(&text)?;
                println!(
                    "ok: chrome trace with {} events, {} walk tracks, {} phase slices, {} cost samples",
                    stats.events, stats.walk_tracks, stats.phase_slices, stats.cost_samples
                );
                Ok(())
            }
            _ => Err("validate takes FILE [--chrome]".to_string()),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => fail(&message),
    }
}
