//! Human-readable rendering of recordings: a per-run summary and a
//! side-by-side diff of two recordings (same benchmark, different
//! backend/seed/configuration), as printed by `cbls-trace summary` and
//! `cbls-trace diff`.

use cbls_core::SearchPhase;

use crate::trace::TraceRecording;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn millis(nanos: u64) -> f64 {
    nanos as f64 / 1_000_000.0
}

/// Render a multi-line human-readable summary of `recording`: run header,
/// aggregate counts, per-walk table, phase-time breakdown (when profiled)
/// and the metrics snapshot.
#[must_use]
pub fn render_summary(recording: &TraceRecording) -> String {
    let mut out = String::new();
    let meta = &recording.meta;
    let summary = &recording.summary;
    out.push_str(&format!(
        "{} — {} on {} backend, master seed {}, {} walks\n",
        recording.schema, meta.benchmark, meta.backend, meta.master_seed, meta.walks
    ));
    out.push_str(&format!(
        "wall time {:.3} ms; solved {}/{} walks",
        millis(recording.wall_nanos),
        summary.solved_walks,
        summary.walks
    ));
    match summary.winner {
        Some(winner) => out.push_str(&format!("; winner: walk {winner}\n")),
        None => out.push_str("; no winner\n"),
    }
    out.push_str(&format!(
        "totals: {} iterations, {} restarts, {} improvements\n",
        summary.total_iterations, summary.total_restarts, summary.total_improvements
    ));
    out.push_str(&format!(
        "samples: {} kept, {} dropped by downsampling (final stride {})\n",
        recording.samples.len(),
        recording.dropped_samples,
        recording.sample_stride
    ));

    out.push_str("\nper-walk:\n");
    out.push_str(
        "  walk  seed                  label         solved  iterations  restarts  best\n",
    );
    for walk in &summary.per_walk {
        let label = if walk.label.is_empty() {
            "-"
        } else {
            &walk.label
        };
        out.push_str(&format!(
            "  {:>4}  {:<20}  {:<12}  {:<6}  {:>10}  {:>8}  {:>4}\n",
            walk.walk_id,
            walk.seed,
            label,
            walk.solved,
            walk.iterations,
            walk.restarts,
            walk.best_cost
        ));
    }

    if !recording.phase_profiles.is_empty() {
        let mut totals = [(0u64, 0u64); 3]; // (spans, nanos) per phase index
        for profile in &recording.phase_profiles {
            for phase in SearchPhase::ALL {
                if let Some(t) = profile.of(phase) {
                    totals[phase.index()].0 += t.spans;
                    totals[phase.index()].1 += t.nanos;
                }
            }
        }
        let grand: u64 = totals.iter().map(|&(_, n)| n).sum();
        out.push_str("\nphase profile (all walks):\n");
        for phase in SearchPhase::ALL {
            let (spans, nanos) = totals[phase.index()];
            out.push_str(&format!(
                "  {:<14}  {:>10} spans  {:>12.3} ms  {:>5.1}%\n",
                phase.name(),
                spans,
                millis(nanos),
                pct(nanos, grand)
            ));
        }
    }

    let metrics = &recording.metrics;
    if !metrics.counters.is_empty() || !metrics.gauges.is_empty() {
        out.push_str("\nmetrics:\n");
        for c in &metrics.counters {
            out.push_str(&format!("  {:<24}  {}\n", c.name, c.value));
        }
        for g in &metrics.gauges {
            if g.value == i64::MAX {
                out.push_str(&format!("  {:<24}  (unset)\n", g.name));
            } else {
                out.push_str(&format!("  {:<24}  {}\n", g.name, g.value));
            }
        }
        for h in &metrics.histograms {
            out.push_str(&format!(
                "  {:<24}  count {}  sum {}\n",
                h.name, h.count, h.sum
            ));
        }
    }
    out
}

fn diff_line(name: &str, a: impl std::fmt::Display, b: impl std::fmt::Display) -> String {
    format!("  {name:<20}  {a:>16}  {b:>16}\n")
}

/// Render a side-by-side comparison of two recordings (labelled `A` / `B`),
/// covering solve status, work totals and wall time.  Intended for comparing
/// backends or seeds on the same benchmark.
#[must_use]
pub fn render_diff(a: &TraceRecording, b: &TraceRecording) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "A: {} / {} / seed {} / {} walks\n",
        a.meta.benchmark, a.meta.backend, a.meta.master_seed, a.meta.walks
    ));
    out.push_str(&format!(
        "B: {} / {} / seed {} / {} walks\n\n",
        b.meta.benchmark, b.meta.backend, b.meta.master_seed, b.meta.walks
    ));
    out.push_str(&diff_line("", "A", "B"));
    out.push_str(&diff_line(
        "solved walks",
        format!("{}/{}", a.summary.solved_walks, a.summary.walks),
        format!("{}/{}", b.summary.solved_walks, b.summary.walks),
    ));
    out.push_str(&diff_line(
        "winner",
        a.summary
            .winner
            .map_or_else(|| "-".to_string(), |w| w.to_string()),
        b.summary
            .winner
            .map_or_else(|| "-".to_string(), |w| w.to_string()),
    ));
    out.push_str(&diff_line(
        "iterations",
        a.summary.total_iterations,
        b.summary.total_iterations,
    ));
    out.push_str(&diff_line(
        "restarts",
        a.summary.total_restarts,
        b.summary.total_restarts,
    ));
    out.push_str(&diff_line(
        "improvements",
        a.summary.total_improvements,
        b.summary.total_improvements,
    ));
    out.push_str(&diff_line(
        "wall ms",
        format!("{:.3}", millis(a.wall_nanos)),
        format!("{:.3}", millis(b.wall_nanos)),
    ));
    let (wa, wb) = (a.wall_nanos.max(1) as f64, b.wall_nanos.max(1) as f64);
    out.push_str(&format!("\nwall-time ratio A/B: {:.3}\n", wa / wb));
    if a.meta.benchmark != b.meta.benchmark {
        out.push_str("note: recordings are of different benchmarks\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, RecorderConfig};
    use crate::trace::TraceMeta;
    use cbls_parallel::{SequentialExecutor, WalkBatch, WalkExecutor};

    fn record(seed: u64, phases: bool) -> TraceRecording {
        let bench = cbls_problems::Benchmark::NQueens(10);
        let factory = || bench.build();
        let batch = WalkBatch::uniform(seed, &bench.tuned_config(), 2).run_to_completion();
        let config = if phases {
            RecorderConfig::with_phases()
        } else {
            RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(
            TraceMeta {
                benchmark: bench.id(),
                backend: "sequential".to_string(),
                master_seed: seed,
                walks: 2,
            },
            config,
        );
        let execution = SequentialExecutor.execute_with_telemetry(&factory, &batch, &recorder);
        recorder.finish(&execution)
    }

    #[test]
    fn summary_mentions_run_identity_and_walks() {
        let rec = record(42, true);
        let text = render_summary(&rec);
        assert!(text.contains("queens-10"));
        assert!(text.contains("sequential"));
        assert!(text.contains("per-walk:"));
        assert!(text.contains("phase profile"));
        assert!(text.contains("candidate-scan"));
        assert!(text.contains("engine.iterations"));
    }

    #[test]
    fn summary_omits_phase_section_when_not_profiled() {
        let rec = record(42, false);
        let text = render_summary(&rec);
        assert!(!text.contains("phase profile"));
    }

    #[test]
    fn diff_reports_both_sides() {
        let a = record(42, false);
        let b = record(43, false);
        let text = render_diff(&a, &b);
        assert!(text.contains("seed 42"));
        assert!(text.contains("seed 43"));
        assert!(text.contains("wall-time ratio"));
    }
}
