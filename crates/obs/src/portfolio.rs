//! Metrics for portfolio runs: register a standard set of portfolio-level
//! instruments in a [`MetricsRegistry`] and feed them from
//! [`PortfolioResult`]s as runs complete.
//!
//! The portfolio layer already aggregates per-member statistics
//! ([`PortfolioResult::member_stats`]); this module lifts those into the
//! same registry the flight recorder uses, so a long-running experiment
//! (many portfolio runs) accumulates one coherent snapshot.

use cbls_portfolio::PortfolioResult;

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Portfolio-level instruments, registered once and fed per run.
///
/// ```
/// use cbls_obs::{MetricsRegistry, PortfolioMetrics};
/// use cbls_portfolio::{run_portfolio, Portfolio, PortfolioMember, Schedule};
/// use cbls_parallel::SequentialExecutor;
/// use cbls_core::SearchConfig;
/// use cbls_problems::Benchmark;
///
/// let bench = Benchmark::NQueens(10);
/// let member = PortfolioMember::new("luby", SearchConfig::default(), Schedule::luby(2_000, 15));
/// let portfolio = Portfolio::cycled(std::slice::from_ref(&member), 2).with_master_seed(42);
///
/// let mut registry = MetricsRegistry::new();
/// let metrics = PortfolioMetrics::register(&mut registry);
/// let result = run_portfolio(&|| bench.build(), &portfolio, &SequentialExecutor, None);
/// metrics.observe(&result);
///
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter("portfolio.runs"), Some(1));
/// ```
#[derive(Debug)]
pub struct PortfolioMetrics {
    runs: Counter,
    solved_runs: Counter,
    walks: Counter,
    solved_walks: Counter,
    iterations: Counter,
    restarts: Counter,
    best_cost: Gauge,
    winner_iterations: Histogram,
}

impl PortfolioMetrics {
    /// Register the portfolio instrument set in `registry`.
    ///
    /// Instruments: counters `portfolio.runs`, `portfolio.solved_runs`,
    /// `portfolio.walks`, `portfolio.solved_walks`, `portfolio.iterations`,
    /// `portfolio.restarts`; gauge `portfolio.best_cost` (minimum across
    /// runs); histogram `portfolio.winner_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if any of those names is already registered.
    #[must_use]
    pub fn register(registry: &mut MetricsRegistry) -> Self {
        Self {
            runs: registry.counter("portfolio.runs"),
            solved_runs: registry.counter("portfolio.solved_runs"),
            walks: registry.counter("portfolio.walks"),
            solved_walks: registry.counter("portfolio.solved_walks"),
            iterations: registry.counter("portfolio.iterations"),
            restarts: registry.counter("portfolio.restarts"),
            best_cost: registry.gauge("portfolio.best_cost"),
            winner_iterations: registry.histogram(
                "portfolio.winner_iterations",
                &[100, 1_000, 10_000, 100_000],
            ),
        }
    }

    /// Fold one completed portfolio run into the instruments.
    pub fn observe(&self, result: &PortfolioResult) {
        self.runs.inc();
        if result.solved() {
            self.solved_runs.inc();
        }
        self.walks.add(result.reports.len() as u64);
        self.iterations.add(result.total_iterations());
        for report in &result.reports {
            if report.outcome.solved() {
                self.solved_walks.inc();
            }
            self.restarts.add(report.outcome.stats.restarts);
            self.best_cost.record_min(report.outcome.best_cost);
        }
        if let Some(iterations) = result.winning_iterations() {
            self.winner_iterations.record(iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbls_core::SearchConfig;
    use cbls_parallel::SequentialExecutor;
    use cbls_portfolio::{run_portfolio, Portfolio, PortfolioMember, Schedule};
    use cbls_problems::Benchmark;

    fn run_once(seed: u64) -> PortfolioResult {
        let bench = Benchmark::NQueens(10);
        let protos = vec![
            PortfolioMember::new("fixed", SearchConfig::default(), Schedule::fixed(10_000, 3)),
            PortfolioMember::new("luby", SearchConfig::default(), Schedule::luby(2_000, 15)),
        ];
        let portfolio = Portfolio::cycled(&protos, 2).with_master_seed(seed);
        run_portfolio(&|| bench.build(), &portfolio, &SequentialExecutor, None)
    }

    #[test]
    fn observe_accumulates_across_runs() {
        let mut registry = MetricsRegistry::new();
        let metrics = PortfolioMetrics::register(&mut registry);
        let a = run_once(42);
        let b = run_once(43);
        metrics.observe(&a);
        metrics.observe(&b);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("portfolio.runs"), Some(2));
        assert_eq!(snapshot.counter("portfolio.walks"), Some(4));
        assert_eq!(
            snapshot.counter("portfolio.iterations"),
            Some(a.total_iterations() + b.total_iterations())
        );
        let solved = [&a, &b]
            .iter()
            .flat_map(|r| r.reports.iter())
            .filter(|r| r.outcome.solved())
            .count() as u64;
        assert_eq!(snapshot.counter("portfolio.solved_walks"), Some(solved));
        // queens-10 is solvable: at least one run should have solved,
        // pinning the winner histogram and the best-cost gauge at 0.
        assert!(snapshot.counter("portfolio.solved_runs").unwrap() >= 1);
        assert_eq!(snapshot.gauge("portfolio.best_cost"), Some(0));
        let hist = snapshot.histogram("portfolio.winner_iterations").unwrap();
        assert!(hist.count >= 1);
    }

    #[test]
    fn member_stats_group_walks_by_label() {
        let result = run_once(42);
        let stats = result.member_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, "fixed");
        assert_eq!(stats[1].label, "luby");
        assert_eq!(stats.iter().map(|s| s.walks).sum::<usize>(), 2);
        let total: u64 = stats.iter().map(|s| s.iterations).sum();
        assert_eq!(total, result.total_iterations());
        assert_eq!(
            stats.iter().filter(|s| s.won).count(),
            usize::from(result.solved())
        );
    }
}
