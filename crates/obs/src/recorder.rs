//! The flight recorder: a bounded, alloc-free-after-construction
//! [`EventSink`] that turns a batch run into a [`TraceRecording`].
//!
//! The recorder extends the existing telemetry contract rather than
//! replacing it — it is just another sink, so attaching it leaves every run
//! bit-identical (same trajectories, same RNG streams, same solutions).  Two
//! retention tiers keep long runs bounded:
//!
//! * **lifecycle** events (`Started` / `Finished`) are always kept — two per
//!   walk, sized at construction;
//! * **sampled** events (cost trajectory, restart markers, phase spans) go
//!   through an adaptive downsampler: events are admitted every `stride`
//!   offers, and when the buffer hits capacity every second retained sample
//!   is dropped in place and the stride doubles.  Memory stays `O(capacity)`
//!   and the retained points remain spread over the whole run, however long
//!   it gets — the classic flight-recorder trade.
//!
//! Phase spans additionally feed exact per-walk × per-phase atomic totals
//! (never sampled), so profile shares in the summary are precise even though
//! the slice stream is sparse.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cbls_core::{monotonic_now, SearchPhase};
use cbls_parallel::{BatchExecution, EventSink, FaultKind, WalkEvent};

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::trace::{
    summarize, PhaseTotals, TraceEvent, TraceEventKind, TraceMeta, TraceRecording,
    WalkPhaseProfile, TRACE_SCHEMA,
};

/// Knobs of a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Maximum retained sampled events (the ring's capacity).
    pub capacity: usize,
    /// Opt into engine phase profiling (exact totals + sampled spans).
    /// Costs clock reads on the hot path; off by default.
    pub phases: bool,
    /// Admit one of every `span_sample_every` phase spans into the sampled
    /// slice stream (exact totals count every span regardless).
    pub span_sample_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            phases: false,
            span_sample_every: 64,
        }
    }
}

impl RecorderConfig {
    /// The default configuration with phase profiling enabled.
    #[must_use]
    pub fn with_phases() -> Self {
        Self {
            phases: true,
            ..Self::default()
        }
    }
}

/// Counters and gauges the recorder maintains; names are the public metrics
/// catalog documented in the README's Observability section.
struct StandardMetrics {
    events: Counter,
    walks_started: Counter,
    walks_finished: Counter,
    walks_solved: Counter,
    restarts: Counter,
    improvements: Counter,
    iterations: Counter,
    faults_panicked: Counter,
    faults_stalled: Counter,
    faults_retried: Counter,
    best_cost: Gauge,
    walk_iterations: Histogram,
}

impl StandardMetrics {
    fn register(registry: &mut MetricsRegistry) -> Self {
        Self {
            events: registry.counter("recorder.events"),
            walks_started: registry.counter("walks.started"),
            walks_finished: registry.counter("walks.finished"),
            walks_solved: registry.counter("walks.solved"),
            restarts: registry.counter("engine.restarts"),
            improvements: registry.counter("engine.improvements"),
            iterations: registry.counter("engine.iterations"),
            faults_panicked: registry.counter("faults.panicked"),
            faults_stalled: registry.counter("faults.stalled"),
            faults_retried: registry.counter("faults.retried"),
            best_cost: registry.gauge("cost.best"),
            walk_iterations: registry.histogram(
                "walk.iterations",
                &[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            ),
        }
    }
}

/// The mutex-guarded event streams (everything the downsampler mutates).
struct RecorderState {
    lifecycle: Vec<TraceEvent>,
    samples: Vec<TraceEvent>,
    stride: u64,
    offered: u64,
    kept: u64,
}

impl RecorderState {
    /// Offer one event to the sampled stream under the adaptive stride.
    fn offer(&mut self, capacity: usize, event: TraceEvent) {
        let index = self.offered;
        self.offered += 1;
        if index % self.stride != 0 {
            return;
        }
        if self.samples.len() == capacity {
            // Compact in place: keep every second retained sample (no
            // allocation), double the admission stride.
            let mut position = 0u64;
            self.samples.retain(|_| {
                let keep = position % 2 == 0;
                position += 1;
                keep
            });
            self.kept = self.samples.len() as u64;
            self.stride = self.stride.saturating_mul(2);
            // Re-admit the current event only if it aligns with the new
            // stride, keeping the retained set a pure stride filter.
            if index % self.stride != 0 {
                return;
            }
        }
        self.samples.push(event);
        self.kept += 1;
    }
}

/// A bounded flight recorder for one batch run; see the module docs.
///
/// The recorder is constructed for a known walk count, armed on
/// construction (timestamps are nanoseconds since then), attached to an
/// executor as its [`EventSink`], and finally consumed by
/// [`finish`](FlightRecorder::finish) into a [`TraceRecording`].
///
/// ```
/// use cbls_obs::{FlightRecorder, RecorderConfig, TraceMeta};
/// use cbls_parallel::{SequentialExecutor, WalkBatch, WalkExecutor};
/// use cbls_problems::Benchmark;
///
/// let bench = Benchmark::NQueens(12);
/// let factory = || bench.build();
/// let batch = WalkBatch::uniform(42, &bench.tuned_config(), 2).run_to_completion();
/// let recorder = FlightRecorder::new(
///     TraceMeta {
///         benchmark: bench.id(),
///         backend: "sequential".to_string(),
///         master_seed: 42,
///         walks: batch.walks(),
///     },
///     RecorderConfig::with_phases(),
/// );
/// let execution = SequentialExecutor.execute_with_telemetry(&factory, &batch, &recorder);
/// let recording = recorder.finish(&execution);
/// assert!(recording.validate().is_ok());
/// assert_eq!(recording.summary.walks, 2);
/// ```
pub struct FlightRecorder {
    meta: TraceMeta,
    config: RecorderConfig,
    started: Instant,
    registry: MetricsRegistry,
    metrics: StandardMetrics,
    /// Exact per-walk event counters, indexed `walk_id` (improvements /
    /// restarts) — the summary's deterministic inputs.
    walk_improvements: Vec<AtomicU64>,
    walk_restarts: Vec<AtomicU64>,
    /// Exact per-walk × per-phase totals, indexed `walk_id * 3 + phase`.
    phase_nanos: Vec<AtomicU64>,
    phase_spans: Vec<AtomicU64>,
    span_seen: AtomicU64,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// A recorder armed now, sized for `meta.walks` walks.
    ///
    /// # Panics
    ///
    /// Panics if `meta.walks` is zero or `config.capacity` /
    /// `config.span_sample_every` is zero.
    #[must_use]
    pub fn new(meta: TraceMeta, config: RecorderConfig) -> Self {
        assert!(meta.walks > 0, "a recorder needs at least one walk");
        assert!(config.capacity > 0, "recorder capacity must be positive");
        assert!(
            config.span_sample_every > 0,
            "span_sample_every must be positive"
        );
        let mut registry = MetricsRegistry::new();
        let metrics = StandardMetrics::register(&mut registry);
        let walks = meta.walks;
        let make = |n: usize| -> Vec<AtomicU64> { (0..n).map(|_| AtomicU64::new(0)).collect() };
        Self {
            meta,
            started: monotonic_now(),
            registry,
            metrics,
            walk_improvements: make(walks),
            walk_restarts: make(walks),
            phase_nanos: make(walks * SearchPhase::ALL.len()),
            phase_spans: make(walks * SearchPhase::ALL.len()),
            span_seen: AtomicU64::new(0),
            state: Mutex::new(RecorderState {
                lifecycle: Vec::with_capacity(2 * walks),
                samples: Vec::with_capacity(config.capacity),
                stride: 1,
                offered: 0,
                kept: 0,
            }),
            config,
        }
    }

    /// Nanoseconds since the recorder was armed.
    fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The recorder's metrics registry (snapshot-able at any time).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consume the recorder and the batch's execution into a recording.
    ///
    /// The summary is derived from `execution`'s records plus the exact
    /// per-walk counters, so it is deterministic for a fixed seed on a
    /// deterministic back-end, independent of sampling.
    ///
    /// # Panics
    ///
    /// Panics if `execution` has a different number of records than the
    /// recorder was constructed for.
    #[must_use]
    pub fn finish(self, execution: &BatchExecution) -> TraceRecording {
        assert_eq!(
            execution.records.len(),
            self.meta.walks,
            "execution does not match the recorded batch"
        );
        let wall_nanos = u64::try_from(execution.wall_time.as_nanos()).unwrap_or(u64::MAX);
        // Relaxed everywhere below: the batch has joined, writers are done;
        // the join is the synchronization point for all recorder atomics.
        let improvements: Vec<u64> = self
            .walk_improvements
            .iter()
            // Relaxed: post-join read, see above.
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let phase_profiles = if self.config.phases {
            (0..self.meta.walks)
                .map(|walk_id| WalkPhaseProfile {
                    walk_id,
                    phases: SearchPhase::ALL
                        .iter()
                        .map(|&phase| {
                            let slot = walk_id * SearchPhase::ALL.len() + phase.index();
                            PhaseTotals {
                                phase,
                                // Relaxed: post-join read, see above.
                                spans: self.phase_spans[slot].load(Ordering::Relaxed),
                                // Relaxed: post-join read, see above.
                                nanos: self.phase_nanos[slot].load(Ordering::Relaxed),
                            }
                        })
                        .collect(),
                })
                .collect()
        } else {
            Vec::new()
        };
        let summary = summarize(execution, &improvements);
        let state = self.state.into_inner().expect("recorder state poisoned");
        TraceRecording {
            schema: TRACE_SCHEMA.to_string(),
            meta: self.meta,
            wall_nanos,
            lifecycle: state.lifecycle,
            samples: state.samples,
            dropped_samples: state.offered.saturating_sub(state.kept),
            sample_stride: state.stride,
            phase_profiles,
            metrics: self.registry.snapshot(),
            summary,
        }
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, event: &WalkEvent) {
        let t_nanos = self.elapsed_nanos();
        self.metrics.events.inc();
        match *event {
            WalkEvent::Started { walk_id, seed } => {
                self.metrics.walks_started.inc();
                let mut state = self.state.lock().expect("recorder state poisoned");
                if state.lifecycle.len() < state.lifecycle.capacity() {
                    state.lifecycle.push(TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Started { seed },
                    });
                }
            }
            WalkEvent::Restarted { walk_id, restart } => {
                self.metrics.restarts.inc();
                if let Some(slot) = self.walk_restarts.get(walk_id) {
                    // Relaxed: independent per-walk accumulator, read only
                    // after the batch joins.
                    slot.fetch_add(1, Ordering::Relaxed);
                }
                let mut state = self.state.lock().expect("recorder state poisoned");
                state.offer(
                    self.config.capacity,
                    TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Restarted { restart },
                    },
                );
            }
            WalkEvent::ImprovedCost {
                walk_id,
                iteration,
                cost,
            } => {
                self.metrics.improvements.inc();
                self.metrics.best_cost.record_min(cost);
                if let Some(slot) = self.walk_improvements.get(walk_id) {
                    // Relaxed: independent per-walk accumulator, read only
                    // after the batch joins.
                    slot.fetch_add(1, Ordering::Relaxed);
                }
                let mut state = self.state.lock().expect("recorder state poisoned");
                state.offer(
                    self.config.capacity,
                    TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Cost { iteration, cost },
                    },
                );
            }
            WalkEvent::Finished {
                walk_id,
                solved,
                iterations,
                cost,
            } => {
                self.metrics.walks_finished.inc();
                if solved {
                    self.metrics.walks_solved.inc();
                }
                self.metrics.best_cost.record_min(cost);
                self.metrics.iterations.add(iterations);
                self.metrics.walk_iterations.record(iterations);
                let mut state = self.state.lock().expect("recorder state poisoned");
                if state.lifecycle.len() < state.lifecycle.capacity() {
                    state.lifecycle.push(TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Finished {
                            solved,
                            iterations,
                            cost,
                        },
                    });
                }
            }
            WalkEvent::Faulted {
                walk_id,
                kind,
                attempt,
            } => {
                match kind {
                    FaultKind::Panicked => self.metrics.faults_panicked.inc(),
                    FaultKind::Stalled => self.metrics.faults_stalled.inc(),
                }
                let mut state = self.state.lock().expect("recorder state poisoned");
                state.offer(
                    self.config.capacity,
                    TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Faulted {
                            fault: kind,
                            attempt,
                        },
                    },
                );
            }
            WalkEvent::Retried {
                walk_id,
                attempt,
                seed,
            } => {
                self.metrics.faults_retried.inc();
                let mut state = self.state.lock().expect("recorder state poisoned");
                state.offer(
                    self.config.capacity,
                    TraceEvent {
                        t_nanos,
                        walk_id,
                        kind: TraceEventKind::Retried { attempt, seed },
                    },
                );
            }
        }
    }

    fn observes_phases(&self) -> bool {
        self.config.phases
    }

    fn observe_phase(&self, walk_id: usize, phase: SearchPhase, elapsed_nanos: u64) {
        let slot = walk_id * SearchPhase::ALL.len() + phase.index();
        if let (Some(nanos), Some(spans)) = (self.phase_nanos.get(slot), self.phase_spans.get(slot))
        {
            // Relaxed: independent per-slot accumulators on the engine hot
            // path, read only after the batch joins.
            nanos.fetch_add(elapsed_nanos, Ordering::Relaxed);
            // Relaxed: same accumulator contract as the line above.
            spans.fetch_add(1, Ordering::Relaxed);
        }
        // Relaxed: a shared admission ticket; exactness of the modulo filter
        // across threads is not required, only boundedness.
        let seen = self.span_seen.fetch_add(1, Ordering::Relaxed);
        if seen % self.config.span_sample_every == 0 {
            let now = self.elapsed_nanos();
            let mut state = self.state.lock().expect("recorder state poisoned");
            state.offer(
                self.config.capacity,
                TraceEvent {
                    t_nanos: now.saturating_sub(elapsed_nanos),
                    walk_id,
                    kind: TraceEventKind::PhaseSpan {
                        phase,
                        dur_nanos: elapsed_nanos,
                    },
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(walks: usize) -> TraceMeta {
        TraceMeta {
            benchmark: "test".to_string(),
            backend: "none".to_string(),
            master_seed: 1,
            walks,
        }
    }

    #[test]
    fn downsampler_is_bounded_and_spreads_retained_points() {
        let mut state = RecorderState {
            lifecycle: Vec::new(),
            samples: Vec::with_capacity(64),
            stride: 1,
            offered: 0,
            kept: 0,
        };
        for i in 0..100_000u64 {
            state.offer(
                64,
                TraceEvent {
                    t_nanos: i,
                    walk_id: 0,
                    kind: TraceEventKind::Restarted { restart: i },
                },
            );
        }
        assert!(state.samples.len() <= 64, "ring overflowed");
        assert!(state.stride > 1, "stride never adapted");
        assert_eq!(state.offered, 100_000);
        // Retained points are a pure stride filter: timestamps are exactly
        // the multiples of the final stride that survived compaction.
        for event in &state.samples {
            assert_eq!(event.t_nanos % state.stride, 0);
        }
        // And they span the run, not just its start.
        assert!(state.samples.last().unwrap().t_nanos > 50_000);
    }

    #[test]
    fn recorder_counts_events_and_keeps_lifecycle() {
        let recorder = FlightRecorder::new(meta(2), RecorderConfig::default());
        recorder.record(&WalkEvent::Started {
            walk_id: 0,
            seed: 5,
        });
        recorder.record(&WalkEvent::Started {
            walk_id: 1,
            seed: 6,
        });
        recorder.record(&WalkEvent::Restarted {
            walk_id: 0,
            restart: 1,
        });
        recorder.record(&WalkEvent::ImprovedCost {
            walk_id: 1,
            iteration: 3,
            cost: 4,
        });
        recorder.record(&WalkEvent::ImprovedCost {
            walk_id: 1,
            iteration: 9,
            cost: 2,
        });
        recorder.record(&WalkEvent::Finished {
            walk_id: 0,
            solved: false,
            iterations: 100,
            cost: 3,
        });
        recorder.record(&WalkEvent::Finished {
            walk_id: 1,
            solved: true,
            iterations: 50,
            cost: 0,
        });
        let snap = recorder.registry().snapshot();
        assert_eq!(snap.counter("recorder.events"), Some(7));
        assert_eq!(snap.counter("walks.started"), Some(2));
        assert_eq!(snap.counter("walks.solved"), Some(1));
        assert_eq!(snap.counter("engine.restarts"), Some(1));
        assert_eq!(snap.counter("engine.improvements"), Some(2));
        assert_eq!(snap.counter("engine.iterations"), Some(150));
        assert_eq!(snap.gauge("cost.best"), Some(0));
        let hist = snap.histogram("walk.iterations").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 150);

        let state = recorder.state.lock().unwrap();
        assert_eq!(state.lifecycle.len(), 4);
        assert_eq!(state.samples.len(), 3);
    }

    #[test]
    fn phase_totals_are_exact_even_when_spans_are_sampled() {
        let config = RecorderConfig {
            phases: true,
            span_sample_every: 10,
            ..RecorderConfig::default()
        };
        let recorder = FlightRecorder::new(meta(1), config);
        assert!(recorder.observes_phases());
        for _ in 0..25 {
            recorder.observe_phase(0, SearchPhase::CandidateScan, 100);
        }
        recorder.observe_phase(0, SearchPhase::Projection, 7);
        let slot = SearchPhase::CandidateScan.index();
        assert_eq!(
            // Relaxed: single-threaded test, writers already returned.
            recorder.phase_spans[slot].load(Ordering::Relaxed),
            25,
            "every span must be counted"
        );
        // Relaxed: single-threaded test, writers already returned.
        assert_eq!(recorder.phase_nanos[slot].load(Ordering::Relaxed), 2_500);
        let sampled = recorder.state.lock().unwrap().samples.len();
        assert!(sampled < 26, "spans must be sampled, got {sampled}");
        assert!(sampled >= 1, "some spans must be admitted");
    }

    #[test]
    fn disabled_phases_produce_no_profiles() {
        let recorder = FlightRecorder::new(meta(1), RecorderConfig::default());
        assert!(!recorder.observes_phases());
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_walks_rejected() {
        let _ = FlightRecorder::new(meta(0), RecorderConfig::default());
    }
}
