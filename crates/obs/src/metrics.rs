//! The metrics registry: named counters, gauges and fixed-bucket histograms
//! that are **alloc-free after registration**.
//!
//! Registration (naming a metric, sizing histogram buckets) allocates; every
//! update afterwards is a handful of atomic operations, so metric handles are
//! safe to drive from the engine's recording paths — the same contract
//! `cbls-lint`'s `no-alloc-hot-path` rule enforces on the flight recorder.
//! Handles are cheap `Arc` clones: the registry keeps one end for
//! [`MetricsRegistry::snapshot`], the instrumented code keeps the other.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter detached from any registry (useful in tests).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // Relaxed: independent monotonic accumulator; readers snapshot after
        // the batch joins, which is the synchronization point.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        // Relaxed: monotonic counter read; no other memory is published
        // through this load.
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins `i64` metric with an atomic running-minimum helper.
#[derive(Debug, Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            value: Arc::new(AtomicI64::new(i64::MAX)),
        }
    }
}

impl Gauge {
    /// A gauge detached from any registry, initialised to `i64::MAX` (so the
    /// first [`record_min`](Self::record_min) always wins).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        // Relaxed: last-writer-wins level; read only after the batch joins.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Lower the gauge to `v` if `v` is smaller than the current value (used
    /// for "best cost seen so far" across concurrently improving walks).
    pub fn record_min(&self, v: i64) {
        // Relaxed: the running minimum is order-independent and read only
        // after the batch joins.
        self.value.fetch_min(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        // Relaxed: plain level read; no other memory rides on it.
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket cumulative-style histogram over `u64` observations.
///
/// `bounds` are inclusive upper bounds of the first `bounds.len()` buckets;
/// one implicit overflow bucket catches everything larger.  Bounds are fixed
/// at registration, so recording is a bounded scan plus two atomic adds.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<[u64]>,
    buckets: Arc<[AtomicU64]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Histogram {
    /// A histogram detached from any registry.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets: Vec<AtomicU64> = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.to_vec().into(),
            buckets: buckets.into(),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let mut slot = self.bounds.len();
        for (i, &bound) in self.bounds.iter().enumerate() {
            if value <= bound {
                slot = i;
                break;
            }
        }
        // Relaxed: independent per-bucket accumulators; the snapshot after
        // the batch joins is the only reader and needs no ordering here.
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        // Relaxed: same accumulator contract as the buckets above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // Relaxed: same accumulator contract as the buckets above.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        // Relaxed: monotonic counter read after the writers are done.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        // Relaxed: monotonic accumulator read after the writers are done.
        self.sum.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A point-in-time copy of one gauge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Inclusive upper bounds of the leading buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds` (the last
    /// entry is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
}

/// A point-in-time copy of a whole registry, ordered by metric name within
/// each kind.  Serializes to JSON via the workspace serde shim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A named collection of metrics.
///
/// Registration hands out live handles and keeps a mirror for snapshotting.
/// Names must be unique per kind; re-registering a name panics (metrics are
/// wired once at construction time, a duplicate is a programming error).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter and return its handle.
    ///
    /// # Panics
    ///
    /// Panics if a counter named `name` already exists.
    pub fn counter(&mut self, name: &str) -> Counter {
        assert!(
            !self.counters.iter().any(|(n, _)| n == name),
            "duplicate counter {name:?}"
        );
        let handle = Counter::new();
        self.counters.push((name.to_string(), handle.clone()));
        handle
    }

    /// Register a gauge and return its handle.
    ///
    /// # Panics
    ///
    /// Panics if a gauge named `name` already exists.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        assert!(
            !self.gauges.iter().any(|(n, _)| n == name),
            "duplicate gauge {name:?}"
        );
        let handle = Gauge::new();
        self.gauges.push((name.to_string(), handle.clone()));
        handle
    }

    /// Register a histogram with the given bucket bounds and return its
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if a histogram named `name` already exists, or if `bounds` is
    /// empty or not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            !self.histograms.iter().any(|(n, _)| n == name),
            "duplicate histogram {name:?}"
        );
        let handle = Histogram::with_bounds(bounds);
        self.histograms.push((name.to_string(), handle.clone()));
        handle
    }

    /// Copy every metric's current value, sorted by name within each kind.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.value(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.value(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    // Relaxed: bucket reads after the writers are done
                    // (snapshot happens after the batch joins).
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                HistogramSnapshot {
                    name: name.clone(),
                    bounds: h.bounds.to_vec(),
                    buckets,
                    count: h.count(),
                    sum: h.sum(),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("engine.iterations");
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        assert_eq!(reg.snapshot().counter("engine.iterations"), Some(42));
        assert_eq!(reg.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauges_set_and_take_minima() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("cost.best");
        assert_eq!(g.value(), i64::MAX);
        g.record_min(100);
        g.record_min(250);
        assert_eq!(g.value(), 100);
        g.set(-5);
        g.record_min(3);
        assert_eq!(reg.snapshot().gauge("cost.best"), Some(-5));
    }

    #[test]
    fn histograms_bucket_inclusively_with_overflow() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 999, 5000] {
            h.record(v);
        }
        let mut reg = MetricsRegistry::new();
        let reg_h = reg.histogram("walk.iterations", &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 999, 5000] {
            reg_h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("walk.iterations").unwrap();
        assert_eq!(hs.buckets, vec![2, 2, 1, 1]);
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1 + 10 + 11 + 100 + 999 + 5000);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn snapshot_is_sorted_and_serializes() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        reg.gauge("z");
        reg.histogram("h", &[1]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a");
        assert_eq!(snap.counters[1].name, "b");
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_names_panic() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.counter("x");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_histogram_bounds_panic() {
        let _ = Histogram::with_bounds(&[10, 10]);
    }
}
