//! The versioned trace schema: what a [`FlightRecorder`](crate::FlightRecorder)
//! run serializes to and what the `cbls-trace` CLI loads back.
//!
//! A [`TraceRecording`] is a self-describing JSON document tagged with
//! [`TRACE_SCHEMA`].  It carries two event streams — the always-kept
//! per-walk lifecycle (one `Started`, one `Finished` per walk) and the
//! adaptively downsampled `samples` stream (cost trajectory, restart
//! markers, sampled phase spans) — plus exact per-walk phase totals, a
//! metrics snapshot and a deterministic [`TraceSummary`] derived from the
//! batch's records rather than from the (sampling-dependent) streams.
//!
//! All timestamps are monotonic nanoseconds since the recorder was armed
//! (`t_nanos`), so a recording is relocatable and diffable; wall-clock
//! timing never enters the schema.

use cbls_core::SearchPhase;
use cbls_parallel::{BatchExecution, FaultKind};
use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;

/// The trace schema tag; bump the suffix on breaking changes.
pub const TRACE_SCHEMA: &str = "cbls-trace/1";

/// One recorded event, stamped with nanoseconds since the recorder started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the recorder was armed.  For
    /// [`TraceEventKind::PhaseSpan`] this is the span's *start*.
    pub t_nanos: u64,
    /// Walk the event belongs to.
    pub walk_id: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The payload of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// The walk is about to perform its first iteration.
    Started {
        /// The walk's derived 64-bit seed.
        seed: u64,
    },
    /// The walk's engine began a restart (1-based index).
    Restarted {
        /// 1-based restart index.
        restart: u64,
    },
    /// The walk strictly improved its best cost (a cost-trajectory point).
    Cost {
        /// Engine iterations when the improvement was reached.
        iteration: u64,
        /// The new best cost.
        cost: i64,
    },
    /// The walk finished.
    Finished {
        /// Whether the walk reached its target cost.
        solved: bool,
        /// Total engine iterations performed.
        iterations: u64,
        /// Final best cost.
        cost: i64,
    },
    /// A sampled engine phase span of `dur_nanos`, starting at `t_nanos`.
    PhaseSpan {
        /// Which engine phase the span covers.
        phase: SearchPhase,
        /// Span length in monotonic nanoseconds.
        dur_nanos: u64,
    },
    /// The walk faulted (panicked or was declared stalled).
    Faulted {
        /// Payload-free fault classification.
        fault: FaultKind,
        /// Which attempt of the walk faulted (0 = the original).
        attempt: u32,
    },
    /// A supervisor rescheduled the walk under a fresh retry stream.
    Retried {
        /// The retry's attempt index (1-based; attempt 0 is the original).
        attempt: u32,
        /// The retry stream's derived 64-bit seed.
        seed: u64,
    },
}

/// Identity of a recording: what ran, where, and under which seed family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Benchmark id (a [`Benchmark::id`](cbls_problems::Benchmark::id)
    /// string) or a free-form label for non-catalog runs.
    pub benchmark: String,
    /// Executor back-end name (`threads` / `rayon` / `sequential`).
    pub backend: String,
    /// Master seed of the batch's walk-seed family.
    pub master_seed: u64,
    /// Number of walks in the batch.
    pub walks: usize,
}

/// Exact accumulated time of one engine phase on one walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// The phase.
    pub phase: SearchPhase,
    /// Number of spans observed (every span counts, sampled or not).
    pub spans: u64,
    /// Total monotonic nanoseconds across all spans.
    pub nanos: u64,
}

/// The per-phase totals of one walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkPhaseProfile {
    /// The walk.
    pub walk_id: usize,
    /// One entry per [`SearchPhase`], in [`SearchPhase::ALL`] order.
    pub phases: Vec<PhaseTotals>,
}

impl WalkPhaseProfile {
    /// The totals of one phase.
    #[must_use]
    pub fn of(&self, phase: SearchPhase) -> Option<&PhaseTotals> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Total attributed nanoseconds across all phases.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }
}

/// Deterministic per-walk summary line, derived from the batch's
/// [`WalkRecord`](cbls_parallel::WalkRecord) and the recorder's exact
/// per-walk event counters — never from the downsampled streams.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkSummary {
    /// The walk.
    pub walk_id: usize,
    /// The walk's job label (empty for flat batches).
    pub label: String,
    /// The walk's derived seed.
    pub seed: u64,
    /// Whether the walk solved.
    pub solved: bool,
    /// Engine iterations performed.
    pub iterations: u64,
    /// Engine restarts performed.
    pub restarts: u64,
    /// Strict best-cost improvements observed.
    pub improvements: u64,
    /// The walk's final best cost.
    pub best_cost: i64,
}

/// Deterministic whole-run summary (the part a golden test can pin).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of walks.
    pub walks: usize,
    /// Number of walks that solved.
    pub solved_walks: usize,
    /// The batch's winner per `select_winner`, if any.
    pub winner: Option<usize>,
    /// Iterations summed over all walks.
    pub total_iterations: u64,
    /// Restarts summed over all walks.
    pub total_restarts: u64,
    /// Improvements summed over all walks.
    pub total_improvements: u64,
    /// One line per walk, ordered by walk id.
    pub per_walk: Vec<WalkSummary>,
}

/// A complete recorded run: the document `cbls-trace` saves and loads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecording {
    /// Always [`TRACE_SCHEMA`].
    pub schema: String,
    /// What ran.
    pub meta: TraceMeta,
    /// Wall-clock of the whole batch, in nanoseconds.
    pub wall_nanos: u64,
    /// Per-walk lifecycle events (`Started` / `Finished`), always kept.
    pub lifecycle: Vec<TraceEvent>,
    /// Downsampled event stream (restarts, cost trajectory, phase spans),
    /// in arrival order, at most the recorder's capacity.
    pub samples: Vec<TraceEvent>,
    /// Events offered to the sampled stream but not retained (admission
    /// stride plus in-place compaction).
    pub dropped_samples: u64,
    /// Final admission stride of the sampled stream (doubles on every
    /// compaction; 1 means nothing was ever dropped by striding).
    pub sample_stride: u64,
    /// Exact per-walk phase totals (empty when phase profiling was off).
    pub phase_profiles: Vec<WalkPhaseProfile>,
    /// Snapshot of the recorder's metrics registry.
    pub metrics: MetricsSnapshot,
    /// Deterministic run summary.
    pub summary: TraceSummary,
}

impl TraceRecording {
    /// Structural validation: schema tag, walk-id ranges, lifecycle pairing
    /// and summary consistency.  Returns the first problem found.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!(
                "schema mismatch: expected {TRACE_SCHEMA:?}, found {:?}",
                self.schema
            ));
        }
        let walks = self.meta.walks;
        if walks == 0 {
            return Err("meta.walks is zero".to_string());
        }
        for event in self.lifecycle.iter().chain(&self.samples) {
            if event.walk_id >= walks {
                return Err(format!(
                    "event walk_id {} out of range (walks = {walks})",
                    event.walk_id
                ));
            }
        }
        for walk in 0..walks {
            let started = self
                .lifecycle
                .iter()
                .filter(|e| e.walk_id == walk && matches!(e.kind, TraceEventKind::Started { .. }));
            let finished = self
                .lifecycle
                .iter()
                .filter(|e| e.walk_id == walk && matches!(e.kind, TraceEventKind::Finished { .. }));
            if started.count() != 1 || finished.count() != 1 {
                return Err(format!(
                    "walk {walk} lifecycle is not exactly one Started + one Finished"
                ));
            }
        }
        if self.summary.walks != walks || self.summary.per_walk.len() != walks {
            return Err("summary walk count disagrees with meta.walks".to_string());
        }
        let solved = self.summary.per_walk.iter().filter(|w| w.solved).count();
        if solved != self.summary.solved_walks {
            return Err("summary.solved_walks disagrees with per-walk lines".to_string());
        }
        if let Some(winner) = self.summary.winner {
            if winner >= walks {
                return Err(format!("summary.winner {winner} out of range"));
            }
        }
        for profile in &self.phase_profiles {
            if profile.walk_id >= walks {
                return Err(format!(
                    "phase profile walk_id {} out of range",
                    profile.walk_id
                ));
            }
        }
        Ok(())
    }

    /// Every event — lifecycle and samples — merged and sorted by timestamp
    /// (ties keep lifecycle first, then sample arrival order).
    #[must_use]
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .lifecycle
            .iter()
            .chain(&self.samples)
            .copied()
            .collect();
        all.sort_by_key(|e| e.t_nanos);
        all
    }

    /// The sampled + lifecycle events of one walk, in timestamp order.
    #[must_use]
    pub fn events_of(&self, walk_id: usize) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .lifecycle
            .iter()
            .chain(&self.samples)
            .filter(|e| e.walk_id == walk_id)
            .copied()
            .collect();
        events.sort_by_key(|e| e.t_nanos);
        events
    }

    /// The JSONL event dump: one JSON object per line, every event in
    /// timestamp order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.merged_events() {
            out.push_str(&serde_json::to_string(&event).expect("trace events serialize"));
            out.push('\n');
        }
        out
    }
}

/// Build the deterministic summary from a batch's records plus the
/// recorder's exact per-walk improvement counters (indexed by walk id).
#[must_use]
pub fn summarize(execution: &BatchExecution, improvements: &[u64]) -> TraceSummary {
    let per_walk: Vec<WalkSummary> = execution
        .records
        .iter()
        .map(|record| WalkSummary {
            walk_id: record.walk_id,
            label: record.label.clone(),
            seed: record.seed,
            solved: record.outcome.solved(),
            iterations: record.outcome.stats.iterations,
            restarts: record.outcome.stats.restarts,
            improvements: improvements.get(record.walk_id).copied().unwrap_or(0),
            best_cost: record.outcome.best_cost,
        })
        .collect();
    TraceSummary {
        walks: per_walk.len(),
        solved_walks: per_walk.iter().filter(|w| w.solved).count(),
        winner: execution.winner,
        total_iterations: per_walk.iter().map(|w| w.iterations).sum(),
        total_restarts: per_walk.iter().map(|w| w.restarts).sum(),
        total_improvements: per_walk.iter().map(|w| w.improvements).sum(),
        per_walk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_recording() -> TraceRecording {
        TraceRecording {
            schema: TRACE_SCHEMA.to_string(),
            meta: TraceMeta {
                benchmark: "queens-8".to_string(),
                backend: "sequential".to_string(),
                master_seed: 42,
                walks: 1,
            },
            wall_nanos: 1_000,
            lifecycle: vec![
                TraceEvent {
                    t_nanos: 0,
                    walk_id: 0,
                    kind: TraceEventKind::Started { seed: 7 },
                },
                TraceEvent {
                    t_nanos: 900,
                    walk_id: 0,
                    kind: TraceEventKind::Finished {
                        solved: true,
                        iterations: 12,
                        cost: 0,
                    },
                },
            ],
            samples: vec![TraceEvent {
                t_nanos: 450,
                walk_id: 0,
                kind: TraceEventKind::Cost {
                    iteration: 6,
                    cost: 1,
                },
            }],
            dropped_samples: 0,
            sample_stride: 1,
            phase_profiles: vec![],
            metrics: MetricsSnapshot {
                counters: vec![],
                gauges: vec![],
                histograms: vec![],
            },
            summary: TraceSummary {
                walks: 1,
                solved_walks: 1,
                winner: Some(0),
                total_iterations: 12,
                total_restarts: 0,
                total_improvements: 2,
                per_walk: vec![WalkSummary {
                    walk_id: 0,
                    label: String::new(),
                    seed: 7,
                    solved: true,
                    iterations: 12,
                    restarts: 0,
                    improvements: 2,
                    best_cost: 0,
                }],
            },
        }
    }

    #[test]
    fn recording_serde_round_trip() {
        let rec = tiny_recording();
        let json = serde_json::to_string_pretty(&rec).unwrap();
        let back: TraceRecording = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let mut bad_schema = tiny_recording();
        bad_schema.schema = "cbls-trace/0".to_string();
        assert!(bad_schema.validate().unwrap_err().contains("schema"));

        let mut bad_walk = tiny_recording();
        bad_walk.samples[0].walk_id = 9;
        assert!(bad_walk.validate().unwrap_err().contains("out of range"));

        let mut missing_finish = tiny_recording();
        missing_finish.lifecycle.pop();
        assert!(missing_finish.validate().unwrap_err().contains("lifecycle"));

        let mut bad_summary = tiny_recording();
        bad_summary.summary.solved_walks = 0;
        assert!(bad_summary.validate().unwrap_err().contains("solved_walks"));
    }

    #[test]
    fn merged_events_sort_by_time_and_jsonl_has_one_line_each() {
        let rec = tiny_recording();
        let merged = rec.merged_events();
        assert_eq!(merged.len(), 3);
        assert!(merged.windows(2).all(|w| w[0].t_nanos <= w[1].t_nanos));
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            let event: TraceEvent = serde_json::from_str(line).unwrap();
            assert!(event.t_nanos <= 900);
        }
        assert_eq!(rec.events_of(0).len(), 3);
        assert!(rec.events_of(1).is_empty());
    }
}
