//! Metrics for the solve service: the standard instrument set a
//! [`MetricsRegistry`] carries for a multi-tenant `SolveService`.
//!
//! The service crate sits above this one, so the instruments know nothing
//! about requests or queues — they are plain handles the service feeds from
//! its admission and completion paths.  Every update method is alloc-free
//! (atomic operations on pre-registered handles), making them safe to call
//! from the admission decision and per-event streaming hot paths that
//! `cbls-lint`'s `no-alloc-hot-path` rule guards.

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Service-level instruments, registered once per service and fed per job.
///
/// ```
/// use cbls_obs::{MetricsRegistry, ServiceMetrics};
///
/// let mut registry = MetricsRegistry::new();
/// let metrics = ServiceMetrics::register(&mut registry);
/// metrics.job_admitted(1);
/// metrics.job_completed(42, true, false);
/// metrics.job_rejected();
///
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter("service.jobs_admitted"), Some(1));
/// assert_eq!(snapshot.counter("service.jobs_rejected"), Some(1));
/// assert_eq!(snapshot.histogram("service.job_latency_ms").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct ServiceMetrics {
    queue_depth: Gauge,
    admitted: Counter,
    rejected: Counter,
    completed: Counter,
    solved: Counter,
    degraded: Counter,
    job_latency_ms: Histogram,
}

impl ServiceMetrics {
    /// Register the service instrument set in `registry`.
    ///
    /// Instruments: gauge `service.queue_depth` (jobs waiting for a
    /// worker); counters `service.jobs_admitted`, `service.jobs_rejected`
    /// (admission-queue rejects), `service.jobs_completed`,
    /// `service.jobs_solved`, `service.jobs_degraded` (completed with a
    /// [`DegradationReason`](cbls_parallel::DegradationReason)); histogram
    /// `service.job_latency_ms` (submit-to-completion wall time).
    ///
    /// # Panics
    ///
    /// Panics if any of those names is already registered (duplicate
    /// registration).
    #[must_use]
    pub fn register(registry: &mut MetricsRegistry) -> Self {
        let metrics = Self {
            queue_depth: registry.gauge("service.queue_depth"),
            admitted: registry.counter("service.jobs_admitted"),
            rejected: registry.counter("service.jobs_rejected"),
            completed: registry.counter("service.jobs_completed"),
            solved: registry.counter("service.jobs_solved"),
            degraded: registry.counter("service.jobs_degraded"),
            job_latency_ms: registry.histogram(
                "service.job_latency_ms",
                &[1, 10, 100, 1_000, 10_000, 100_000],
            ),
        };
        // A gauge starts at i64::MAX (running-minimum convention); an empty
        // service has an empty queue, so pin the level before first use.
        metrics.queue_depth.set(0);
        metrics
    }

    /// A job passed admission; `depth` is the queue depth just after it was
    /// enqueued.
    pub fn job_admitted(&self, depth: usize) {
        self.admitted.inc();
        self.set_queue_depth(depth);
    }

    /// A job was rejected at admission (queue full, unknown benchmark, ...).
    pub fn job_rejected(&self) {
        self.rejected.inc();
    }

    /// A worker dequeued a job; `depth` is the queue depth just after.
    pub fn job_dequeued(&self, depth: usize) {
        self.set_queue_depth(depth);
    }

    /// A job ran to completion (possibly degraded — that is still a
    /// completion under the anytime contract).
    pub fn job_completed(&self, latency_ms: u64, solved: bool, degraded: bool) {
        self.completed.inc();
        if solved {
            self.solved.inc();
        }
        if degraded {
            self.degraded.inc();
        }
        self.job_latency_ms.record(latency_ms);
    }

    fn set_queue_depth(&self, depth: usize) {
        self.queue_depth
            .set(i64::try_from(depth).unwrap_or(i64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_accumulate_per_job() {
        let mut registry = MetricsRegistry::new();
        let metrics = ServiceMetrics::register(&mut registry);
        assert_eq!(registry.snapshot().gauge("service.queue_depth"), Some(0));

        metrics.job_admitted(1);
        metrics.job_admitted(2);
        metrics.job_rejected();
        metrics.job_dequeued(1);
        metrics.job_completed(5, true, false);
        metrics.job_dequeued(0);
        metrics.job_completed(2_000, false, true);

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("service.jobs_admitted"), Some(2));
        assert_eq!(snapshot.counter("service.jobs_rejected"), Some(1));
        assert_eq!(snapshot.counter("service.jobs_completed"), Some(2));
        assert_eq!(snapshot.counter("service.jobs_solved"), Some(1));
        assert_eq!(snapshot.counter("service.jobs_degraded"), Some(1));
        assert_eq!(snapshot.gauge("service.queue_depth"), Some(0));
        let latency = snapshot.histogram("service.job_latency_ms").unwrap();
        assert_eq!(latency.count, 2);
        assert_eq!(latency.sum, 2_005);
    }

    #[test]
    #[should_panic(expected = "duplicate gauge")]
    fn double_registration_is_rejected() {
        let mut registry = MetricsRegistry::new();
        let _a = ServiceMetrics::register(&mut registry);
        let _b = ServiceMetrics::register(&mut registry);
    }
}
