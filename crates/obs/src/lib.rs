//! `cbls-obs` — observability for Adaptive Search runs.
//!
//! This crate is the workspace's metrics/tracing/profiling layer.  It plugs
//! into the existing telemetry seams (`SearchObserver` in `cbls-core`,
//! [`EventSink`](cbls_parallel::EventSink) in `cbls-parallel`) without
//! changing them: attaching any of its instruments leaves a run
//! **bit-identical** — same RNG streams, same trajectories, same solutions.
//!
//! Three layers:
//!
//! * [`MetricsRegistry`] / [`Counter`] / [`Gauge`] / [`Histogram`] — named
//!   instruments that are alloc-free after registration and snapshot to
//!   serde-able JSON ([`MetricsSnapshot`]).
//! * [`FlightRecorder`] — a bounded [`EventSink`](cbls_parallel::EventSink)
//!   that captures per-walk lifecycle, an adaptively downsampled cost
//!   trajectory / restart / phase-span stream, exact per-walk phase totals
//!   (when [`SearchPhase`](cbls_core::SearchPhase) profiling is enabled) and
//!   a metrics snapshot into a versioned [`TraceRecording`]
//!   ([`TRACE_SCHEMA`]).
//! * Exporters — [`TraceRecording::to_jsonl`] for line-oriented dumps,
//!   [`chrome_trace_json`] for `chrome://tracing` / Perfetto (walks as
//!   tracks, phases as slices), [`render_summary`] / [`render_diff`] for
//!   humans — all driven by the `cbls-trace` binary this crate ships.
//!
//! Phase profiling is opt-in per recorder ([`RecorderConfig::with_phases`]);
//! a disabled recorder costs the engine exactly one branch per potential
//! span, because the executor reads
//! [`observes_phases`](cbls_parallel::EventSink::observes_phases) once per
//! walk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod metrics;
mod portfolio;
mod recorder;
mod service;
mod summary;
mod trace;

pub use chrome::{
    chrome_trace_json, validate_chrome_trace, ChromeEvent, ChromeTrace, ChromeTraceStats,
};
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use portfolio::PortfolioMetrics;
pub use recorder::{FlightRecorder, RecorderConfig};
pub use service::ServiceMetrics;
pub use summary::{render_diff, render_summary};
pub use trace::{
    summarize, PhaseTotals, TraceEvent, TraceEventKind, TraceMeta, TraceRecording, TraceSummary,
    WalkPhaseProfile, WalkSummary, TRACE_SCHEMA,
};
