//! # as-rng — deterministic random streams for reproducible local search
//!
//! The parallel performance analysis reproduced by this workspace depends on
//! *bit-reproducible* random walks: every independent search engine must be
//! able to replay its trajectory from a 64-bit seed, on any platform and for
//! any number of concurrent walks.  Rather than depending on an external
//! crate whose stream may change between releases, this crate implements the
//! small set of generators and sampling utilities the Adaptive Search engine
//! needs:
//!
//! * [`SplitMix64`] — seed expansion and cheap stateless stream derivation,
//! * [`Xoshiro256PlusPlus`] — the default engine generator (fast, 256-bit
//!   state, excellent statistical quality),
//! * [`Pcg32`] — a second, independent family used by tests and by the
//!   performance model so that model noise is uncorrelated with search noise,
//! * [`SeedSequence`] — derivation of per-walk seeds from a master seed, the
//!   way the paper launches `p` independent search engines,
//! * [`RandomSource`] — the trait the engine is generic over, with uniform
//!   integer ranges (Lemire rejection), floats, Bernoulli draws, shuffles and
//!   random permutations.
//!
//! All generators implement [`RandomSource`] and are `Send`, so they can be
//! moved into worker threads by the multi-walk runner.
//!
//! ```
//! use as_rng::{RandomSource, SeedSequence, Xoshiro256PlusPlus};
//!
//! let mut seq = SeedSequence::new(0xC057A5);
//! let mut walk0 = Xoshiro256PlusPlus::from_seed(seq.next_seed());
//! let mut walk1 = Xoshiro256PlusPlus::from_seed(seq.next_seed());
//! let p0 = walk0.permutation(8);
//! let p1 = walk1.permutation(8);
//! assert_ne!(p0, p1); // independent streams
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pcg;
mod sample;
mod seed;
mod source;
mod splitmix;
mod xoshiro;

pub use pcg::Pcg32;
pub use sample::{exponential, shifted_exponential, standard_normal};
pub use seed::SeedSequence;
pub use source::RandomSource;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// The generator used by default throughout the workspace.
pub type DefaultRng = Xoshiro256PlusPlus;

/// Create the workspace-default generator from a 64-bit seed.
///
/// This is a convenience wrapper around
/// [`Xoshiro256PlusPlus::from_u64_seed`]; the engine, the multi-walk runner
/// and the benchmark harness all construct their generators through this
/// function so that "the default RNG" is defined in exactly one place.
pub fn default_rng(seed: u64) -> DefaultRng {
    Xoshiro256PlusPlus::from_u64_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rng_is_deterministic() {
        let mut a = default_rng(42);
        let mut b = default_rng(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn default_rng_differs_across_seeds() {
        let mut a = default_rng(1);
        let mut b = default_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
