//! Seed derivation for families of independent walks.
//!
//! The paper launches `p` search engines "starting from different initial
//! configurations and performing the computation in a purely independent
//! manner".  Reproducibility of the whole experiment therefore reduces to
//! reproducibility of the per-walk seeds.  [`SeedSequence`] derives an
//! unbounded family of 256-bit seeds from a single master seed using the
//! SplitMix64 finalizer over `(master, counter, lane)` tuples, so that:
//!
//! * walk `i` always receives the same seed for a given master seed,
//! * seeds do not depend on how many walks are launched,
//! * a walk's seed can be recomputed in isolation ([`SeedSequence::seed_for`]).

use crate::splitmix::SplitMix64;

/// Derives independent per-walk seeds from a master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
    counter: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Self { master, counter: 0 }
    }

    /// The master seed this sequence was rooted at.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Number of seeds handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.counter
    }

    /// The 256-bit seed of walk `index`, independent of the sequence cursor.
    #[must_use]
    pub fn seed_for(master: u64, index: u64) -> [u64; 4] {
        let base = SplitMix64::mix(master ^ SplitMix64::mix(index));
        [
            SplitMix64::mix(base ^ 0x9E37_79B9_7F4A_7C15),
            SplitMix64::mix(base ^ 0xD1B5_4A32_D192_ED03),
            SplitMix64::mix(base ^ 0x8CB9_2BA7_2F3D_8DD7),
            SplitMix64::mix(base ^ 0xABCD_5803_1702_9F11),
        ]
    }

    /// A 64-bit per-walk seed (convenience for generators seeded from u64).
    #[must_use]
    pub fn u64_seed_for(master: u64, index: u64) -> u64 {
        Self::seed_for(master, index)[0]
    }

    /// Hand out the next 256-bit seed and advance the cursor.
    pub fn next_seed(&mut self) -> [u64; 4] {
        let s = Self::seed_for(self.master, self.counter);
        self.counter += 1;
        s
    }

    /// Hand out the next 64-bit seed and advance the cursor.
    pub fn next_u64_seed(&mut self) -> u64 {
        let s = Self::u64_seed_for(self.master, self.counter);
        self.counter += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_and_random_access_agree() {
        let mut seq = SeedSequence::new(42);
        for i in 0..32 {
            assert_eq!(seq.next_seed(), SeedSequence::seed_for(42, i));
        }
        assert_eq!(seq.issued(), 32);
    }

    #[test]
    fn seeds_are_distinct_across_indices() {
        let mut seen = HashSet::new();
        for i in 0..2048u64 {
            assert!(seen.insert(SeedSequence::seed_for(7, i)));
        }
    }

    #[test]
    fn seeds_are_distinct_across_masters() {
        let mut seen = HashSet::new();
        for m in 0..512u64 {
            assert!(seen.insert(SeedSequence::seed_for(m, 0)));
        }
    }

    #[test]
    fn u64_seed_matches_first_lane() {
        for i in 0..16 {
            assert_eq!(
                SeedSequence::u64_seed_for(99, i),
                SeedSequence::seed_for(99, i)[0]
            );
        }
    }

    #[test]
    fn master_is_preserved() {
        let mut seq = SeedSequence::new(123);
        let _ = seq.next_seed();
        assert_eq!(seq.master(), 123);
    }

    #[test]
    fn no_lane_is_zero_for_small_inputs() {
        // All-zero lanes would degenerate xoshiro seeding.
        for m in 0..64u64 {
            for i in 0..64u64 {
                let s = SeedSequence::seed_for(m, i);
                assert_ne!(s, [0, 0, 0, 0]);
            }
        }
    }
}
