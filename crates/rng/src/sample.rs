//! Continuous distributions used by the performance model.
//!
//! The multi-walk speedup analysis needs to *generate* synthetic runtime
//! distributions (exponential, shifted exponential, log-normal-ish) in tests
//! and in the calibration of the platform models, so the handful of inverse
//! transforms live here next to the generators rather than in the model crate.

use crate::source::RandomSource;

/// Sample an exponential random variable with the given `mean` (`mean > 0`).
///
/// The exponential distribution is the reference case of the paper's
/// analysis: if the sequential run time of a Las Vegas search is exponential,
/// the expected speedup of `p` independent walks is exactly `p` (linear
/// speedup), which is what the Costas Array Problem exhibits.
pub fn exponential<R: RandomSource + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
    let u = rng.f64();
    -mean * (1.0 - u).ln()
}

/// Sample a shifted exponential: `shift + Exp(mean)`.
///
/// A deterministic offset (initialisation, a minimum number of iterations
/// every run must perform) is what bends the speedup curve away from linear —
/// the behaviour of the CSPLib benchmarks in Figures 1 and 2.
pub fn shifted_exponential<R: RandomSource + ?Sized>(rng: &mut R, shift: f64, mean: f64) -> f64 {
    assert!(shift >= 0.0, "shift must be non-negative");
    shift + exponential(rng, mean)
}

/// Sample a standard normal variate (Box–Muller, one value per call).
pub fn standard_normal<R: RandomSource + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller transform; u1 in (0, 1] to avoid ln(0).
    let u1 = 1.0 - rng.f64();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::from_u64_seed(0xFEED)
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut g = rng();
        let n = 40_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut g, mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.1, "sample mean = {m}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(exponential(&mut g, 0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_non_positive_mean() {
        let mut g = rng();
        let _ = exponential(&mut g, 0.0);
    }

    #[test]
    fn shifted_exponential_respects_shift() {
        let mut g = rng();
        for _ in 0..5_000 {
            assert!(shifted_exponential(&mut g, 2.5, 1.0) >= 2.5);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut g = rng();
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut g)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
