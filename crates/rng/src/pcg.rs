//! PCG32 (XSH-RR variant): a second, structurally different generator family.
//!
//! The performance-model substrate draws its Monte-Carlo noise from PCG so
//! that model sampling never shares a stream (or a weakness) with the search
//! trajectories, which all use xoshiro256++.  PCG32 also supports cheap
//! multiple independent *sequences* selected by the stream parameter.

use crate::source::RandomSource;

const MULTIPLIER: u64 = 6_364_136_223_846_793_005;

/// The PCG32 (XSH-RR 64/32) pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a seed and a stream selector.
    ///
    /// Two generators with the same seed but different streams produce
    /// unrelated sequences.
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut g = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = g.next_raw();
        g.state = g.state.wrapping_add(seed);
        let _ = g.next_raw();
        g
    }

    /// Create a generator on the default stream.
    #[must_use]
    pub fn from_u64_seed(seed: u64) -> Self {
        Self::new(seed, 0xDA3E_39CB_94B9_5BDB)
    }

    fn next_raw(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl RandomSource for Pcg32 {
    fn next_u64(&mut self) -> u64 {
        let hi = self.next_raw() as u64;
        let lo = self.next_raw() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed_and_stream() {
        let mut a = Pcg32::new(12345, 678);
        let mut b = Pcg32::new(12345, 678);
        for _ in 0..500 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::new(12345, 1);
        let mut b = Pcg32::new(12345, 2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::from_u64_seed(1);
        let mut b = Pcg32::from_u64_seed(2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn u64_composition_uses_two_draws() {
        let mut a = Pcg32::new(9, 9);
        let mut b = Pcg32::new(9, 9);
        let hi = b.next_u32() as u64;
        let lo = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn uniformity_of_buckets() {
        let mut g = Pcg32::from_u64_seed(777);
        let mut counts = [0usize; 8];
        let n = 40_000;
        for _ in 0..n {
            counts[g.index(8)] += 1;
        }
        let expected = n as f64 / 8.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "counts = {counts:?}"
            );
        }
    }
}
