//! SplitMix64: a tiny, fast generator used for seed expansion.
//!
//! SplitMix64 (Steele, Lea & Flood, 2014) walks a 64-bit counter through a
//! strong finalizer.  It is the recommended seeder for the xoshiro family and
//! is also useful as a stateless hash: `SplitMix64::mix(x)` is a bijection on
//! `u64` with good avalanche behaviour, which the multi-walk runner uses to
//! derive uncorrelated per-walk seeds.

use crate::source::RandomSource;

/// The SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose counter starts at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The SplitMix64 output function applied to an arbitrary value.
    ///
    /// This is a bijective mixing function (finalizer); it is what
    /// [`SeedSequence`](crate::SeedSequence) uses to turn `(master, index)`
    /// pairs into independent seeds.
    #[must_use]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Current internal counter (exposed for tests and checkpointing).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first output for seed 0 equals `mix` of the incremented counter,
    /// i.e. the stream and the stateless finalizer agree by construction.
    #[test]
    fn stream_agrees_with_mix() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), SplitMix64::mix(0));
        let mut h = SplitMix64::new(41);
        assert_eq!(h.next_u64(), SplitMix64::mix(41));
    }

    #[test]
    fn no_short_cycles() {
        let mut g = SplitMix64::new(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(g.next_u64()), "cycle detected far too early");
        }
    }

    #[test]
    fn mix_is_deterministic_and_spreads_bits() {
        assert_eq!(SplitMix64::mix(0), SplitMix64::mix(0));
        // Consecutive inputs should produce wildly different outputs.
        let a = SplitMix64::mix(1);
        let b = SplitMix64::mix(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn mix_of_zero_is_not_zero() {
        assert_ne!(SplitMix64::mix(0), 0);
    }

    #[test]
    fn state_advances() {
        let mut g = SplitMix64::new(7);
        let s0 = g.state();
        let _ = g.next_u64();
        assert_ne!(g.state(), s0);
    }
}
