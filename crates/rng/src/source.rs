//! The [`RandomSource`] trait: the minimal sampling interface the Adaptive
//! Search engine and the multi-walk runner are generic over.

/// A deterministic source of pseudo-random numbers with the sampling helpers
/// used by constraint-based local search.
///
/// Implementors only provide [`next_u64`](RandomSource::next_u64); every
/// other method has a default implementation whose behaviour is part of this
/// crate's stability contract (changing a default would silently change every
/// recorded experiment, so they are treated as frozen).
pub trait RandomSource {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](RandomSource::next_u64) to avoid the weaker low bits of
    /// some generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased multiply-shift
    /// rejection method.  `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        // Lemire 2018: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64 requires lo < hi");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform floating point number in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn bool_with_probability(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// A reference to a uniformly chosen element of `slice`, or `None` if it
    /// is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Pick `k` distinct indices uniformly from `0..n` (partial Fisher–Yates,
    /// `O(n)` memory, `O(k)` swaps).  If `k >= n` every index is returned.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn below_respects_bound() {
        let mut g = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut g = SplitMix64::new(5);
        for _ in 0..50 {
            assert_eq!(g.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        let mut g = SplitMix64::new(5);
        let _ = g.below(0);
    }

    #[test]
    fn range_covers_negative_intervals() {
        let mut g = SplitMix64::new(11);
        for _ in 0..500 {
            let v = g.range_i64(-10, 10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut g = SplitMix64::new(13);
        for _ in 0..1000 {
            let x = g.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut g = SplitMix64::new(17);
        for _ in 0..50 {
            assert!(!g.bool_with_probability(0.0));
            assert!(g.bool_with_probability(1.0));
        }
    }

    #[test]
    fn bernoulli_rate_is_roughly_right() {
        let mut g = SplitMix64::new(19);
        let n = 20_000;
        let hits = (0..n).filter(|_| g.bool_with_probability(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut g = SplitMix64::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut g = SplitMix64::new(29);
        for n in [0usize, 1, 2, 5, 64, 257] {
            let p = g.permutation(n);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(x < n);
                assert!(!seen[x]);
                seen[x] = true;
            }
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut g = SplitMix64::new(31);
        let empty: [u8; 0] = [];
        assert!(g.choose(&empty).is_none());
        assert!(g.choose(&[42]).copied() == Some(42));
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut g = SplitMix64::new(37);
        for (n, k) in [(10usize, 3usize), (10, 10), (10, 20), (1, 1), (5, 0)] {
            let s = g.sample_indices(n, k);
            assert_eq!(s.len(), k.min(n));
            let mut uniq = s.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), s.len());
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn uniformity_chi_square_below() {
        // Coarse 16-bucket chi-square sanity check on `below(16)`.
        let mut g = SplitMix64::new(41);
        let mut counts = [0usize; 16];
        let n = 32_000;
        for _ in 0..n {
            counts[g.below(16) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 15 degrees of freedom: 99.9th percentile is about 37.7.
        assert!(chi2 < 45.0, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let mut g = SplitMix64::new(43);
        fn takes_source<R: RandomSource>(r: &mut R) -> u64 {
            r.next_u64()
        }
        let via_ref = takes_source(&mut g);
        let mut h = SplitMix64::new(43);
        assert_eq!(via_ref, h.next_u64());
    }
}
