//! Xoshiro256++: the workspace's default generator.
//!
//! Blackman & Vigna's xoshiro256++ is fast (a handful of ALU operations per
//! output), has a 256-bit state with period 2^256 − 1, and passes BigCrush.
//! Each independent search engine owns one instance seeded from a
//! [`SeedSequence`](crate::SeedSequence), and `long_jump` provides an extra
//! 2^192-step separation between streams when sub-streams must be carved out
//! of a single generator.

use crate::source::RandomSource;
use crate::splitmix::SplitMix64;

/// The xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Build a generator from a full 256-bit seed.
    ///
    /// The all-zero state is invalid for xoshiro; it is replaced by a state
    /// expanded from a fixed non-zero constant so the constructor is total.
    #[must_use]
    pub fn from_seed(seed: [u64; 4]) -> Self {
        if seed == [0, 0, 0, 0] {
            return Self::from_u64_seed(0xBAD5_EED0_DEAD_BEEF);
        }
        Self { s: seed }
    }

    /// Build a generator by expanding a 64-bit seed through SplitMix64, the
    /// procedure recommended by the xoshiro authors.
    #[must_use]
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self::from_seed(s)
    }

    /// Advance the state by 2^192 steps, yielding a stream that will not
    /// overlap the original for 2^192 outputs.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x76e1_5d3e_fefd_cbbf,
            0xc5004e441c522fb3,
            0x77710069854ee241,
            0x39109bb02acbe635,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump in LONG_JUMP {
            for b in 0..64 {
                if (jump & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Expose the internal state (used by checkpointing tests).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256PlusPlus::from_u64_seed(7);
        let mut b = Xoshiro256PlusPlus::from_u64_seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_rejected_gracefully() {
        let mut g = Xoshiro256PlusPlus::from_seed([0; 4]);
        assert_ne!(g.state(), [0; 4]);
        // and it still produces varied output
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn long_jump_changes_state_and_stream() {
        let mut a = Xoshiro256PlusPlus::from_u64_seed(99);
        let mut b = a.clone();
        b.long_jump();
        assert_ne!(a.state(), b.state());
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_do_not_collide_early() {
        let mut streams: Vec<Vec<u64>> = (0..16u64)
            .map(|s| {
                let mut g = Xoshiro256PlusPlus::from_u64_seed(s);
                (0..16).map(|_| g.next_u64()).collect()
            })
            .collect();
        streams.sort();
        streams.dedup();
        assert_eq!(streams.len(), 16);
    }

    #[test]
    fn output_has_balanced_bits() {
        let mut g = Xoshiro256PlusPlus::from_u64_seed(2024);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| g.next_u64().count_ones()).sum();
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 1.0, "mean popcount = {mean}");
    }

    #[test]
    fn uniformity_of_low_buckets() {
        let mut g = Xoshiro256PlusPlus::from_u64_seed(5150);
        let mut counts = [0usize; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[g.index(10)] += 1;
        }
        let expected = n as f64 / 10.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "counts = {counts:?}"
            );
        }
    }
}
