//! Property-based tests for the RNG substrate.

use as_rng::{default_rng, Pcg32, RandomSource, SeedSequence, SplitMix64, Xoshiro256PlusPlus};
use proptest::prelude::*;

proptest! {
    /// `below(b)` always respects its bound, for any generator state.
    #[test]
    fn below_is_bounded(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut g = default_rng(seed);
        let v = g.below(bound);
        prop_assert!(v < bound);
    }

    /// `range_i64` stays inside its half-open interval.
    #[test]
    fn range_is_bounded(seed in any::<u64>(), lo in -1_000_000i64..1_000_000, span in 1i64..1_000_000) {
        let mut g = default_rng(seed);
        let hi = lo + span;
        let v = g.range_i64(lo, hi);
        prop_assert!(v >= lo && v < hi);
    }

    /// Shuffling never changes the multiset of elements.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in proptest::collection::vec(any::<u32>(), 0..256)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut g = default_rng(seed);
        g.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    /// `permutation(n)` is always a bijection of `0..n`.
    #[test]
    fn permutation_is_bijection(seed in any::<u64>(), n in 0usize..300) {
        let mut g = default_rng(seed);
        let p = g.permutation(n);
        let mut seen = vec![false; n];
        for &x in &p {
            prop_assert!(x < n);
            prop_assert!(!seen[x]);
            seen[x] = true;
        }
        prop_assert_eq!(p.len(), n);
    }

    /// Per-walk seeds are stable under re-derivation and differ across walks.
    #[test]
    fn seed_sequence_is_stable(master in any::<u64>(), i in 0u64..10_000, j in 0u64..10_000) {
        let a = SeedSequence::seed_for(master, i);
        let b = SeedSequence::seed_for(master, i);
        prop_assert_eq!(a, b);
        if i != j {
            prop_assert_ne!(a, SeedSequence::seed_for(master, j));
        }
    }

    /// The three generator families are deterministic given their seed.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256PlusPlus::from_u64_seed(seed);
        let mut b = Xoshiro256PlusPlus::from_u64_seed(seed);
        prop_assert_eq!(a.next_u64(), b.next_u64());

        let mut a = Pcg32::from_u64_seed(seed);
        let mut b = Pcg32::from_u64_seed(seed);
        prop_assert_eq!(a.next_u64(), b.next_u64());

        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// `f64()` stays in the unit interval.
    #[test]
    fn f64_in_unit_interval(seed in any::<u64>()) {
        let mut g = default_rng(seed);
        let x = g.f64();
        prop_assert!((0.0..1.0).contains(&x));
    }

    /// `sample_indices` returns distinct, in-range indices of the right count.
    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 0usize..200, k in 0usize..250) {
        let mut g = default_rng(seed);
        let s = g.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
