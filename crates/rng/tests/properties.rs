//! Property-based tests for the RNG substrate.
//!
//! The build environment has no crates.io access, so instead of proptest the
//! properties run over a deterministic sweep: a grid of seeds (including the
//! edge seeds 0 and `u64::MAX`) crossed with characteristic parameter values.

use as_rng::{default_rng, Pcg32, RandomSource, SeedSequence, SplitMix64, Xoshiro256PlusPlus};

/// Seeds covering the edges plus a spread of "typical" values.
fn seed_grid() -> Vec<u64> {
    let mut seeds = vec![0, 1, u64::MAX, u64::MAX - 1, 0x9E37_79B9_7F4A_7C15];
    seeds.extend((0..96u64).map(|i| SeedSequence::u64_seed_for(0xBAD5_EED5, i)));
    seeds
}

/// `below(b)` always respects its bound, for any generator state.
#[test]
fn below_is_bounded() {
    let bounds = [
        1u64,
        2,
        3,
        5,
        255,
        256,
        1 << 32,
        (1 << 32) + 1,
        u64::MAX - 1,
    ];
    for seed in seed_grid() {
        let mut g = default_rng(seed);
        for &bound in &bounds {
            let v = g.below(bound);
            assert!(v < bound, "seed {seed:#x}, bound {bound}");
        }
    }
}

/// `range_i64` stays inside its half-open interval.
#[test]
fn range_is_bounded() {
    let cases = [
        (-1_000_000i64, 1i64),
        (-1_000_000, 999_999),
        (-1, 1),
        (0, 1),
        (999_999, 1),
        (-500, 1_000),
    ];
    for seed in seed_grid() {
        let mut g = default_rng(seed);
        for &(lo, span) in &cases {
            let hi = lo + span;
            let v = g.range_i64(lo, hi);
            assert!(v >= lo && v < hi, "seed {seed:#x}, range {lo}..{hi}");
        }
    }
}

/// Shuffling never changes the multiset of elements.
#[test]
fn shuffle_preserves_elements() {
    for seed in seed_grid() {
        let mut g = default_rng(seed);
        for len in [0usize, 1, 2, 3, 17, 255] {
            let mut v: Vec<u32> = (0..len).map(|_| g.next_u64() as u32).collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            g.shuffle(&mut v);
            v.sort_unstable();
            assert_eq!(v, expected, "seed {seed:#x}, len {len}");
        }
    }
}

/// `permutation(n)` is always a bijection of `0..n`.
#[test]
fn permutation_is_bijection() {
    for seed in seed_grid() {
        for n in [0usize, 1, 2, 3, 17, 100, 299] {
            let mut g = default_rng(seed ^ n as u64);
            let p = g.permutation(n);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(x < n, "seed {seed:#x}, n {n}");
                assert!(!seen[x], "seed {seed:#x}, n {n}: duplicate {x}");
                seen[x] = true;
            }
            assert_eq!(p.len(), n);
        }
    }
}

/// Per-walk seeds are stable under re-derivation and differ across walks.
#[test]
fn seed_sequence_is_stable() {
    for master in seed_grid() {
        for i in [0u64, 1, 2, 17, 9_999] {
            let a = SeedSequence::seed_for(master, i);
            let b = SeedSequence::seed_for(master, i);
            assert_eq!(a, b, "master {master:#x}, i {i}");
            for j in [0u64, 3, 9_998] {
                if i != j {
                    assert_ne!(
                        a,
                        SeedSequence::seed_for(master, j),
                        "master {master:#x}, i {i}, j {j}"
                    );
                }
            }
        }
    }
}

/// The three generator families are deterministic given their seed.
#[test]
fn generators_are_deterministic() {
    for seed in seed_grid() {
        let mut a = Xoshiro256PlusPlus::from_u64_seed(seed);
        let mut b = Xoshiro256PlusPlus::from_u64_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut a = Pcg32::from_u64_seed(seed);
        let mut b = Pcg32::from_u64_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

/// `f64()` stays in the unit interval.
#[test]
fn f64_in_unit_interval() {
    for seed in seed_grid() {
        let mut g = default_rng(seed);
        for _ in 0..64 {
            let x = g.f64();
            assert!((0.0..1.0).contains(&x), "seed {seed:#x}: {x}");
        }
    }
}

/// `sample_indices` returns distinct, in-range indices of the right count.
#[test]
fn sample_indices_distinct() {
    let cases = [
        (0usize, 0usize),
        (0, 5),
        (1, 1),
        (10, 0),
        (10, 10),
        (10, 249),
        (199, 50),
        (199, 199),
    ];
    for seed in seed_grid() {
        let mut g = default_rng(seed);
        for &(n, k) in &cases {
            let s = g.sample_indices(n, k);
            assert_eq!(s.len(), k.min(n), "seed {seed:#x}, n {n}, k {k}");
            let mut uniq = s.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), s.len(), "seed {seed:#x}, n {n}, k {k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }
}
