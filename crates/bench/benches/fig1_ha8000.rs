//! `cargo bench` target regenerating Figure 1 (CSPLib speedups on HA8000).
//!
//! This is a figure-regeneration harness rather than a statistical
//! micro-benchmark, so it bypasses criterion (`harness = false`) and prints
//! the same table as `cargo run -p cbls-bench --bin fig1_ha8000`, using a
//! reduced sample count unless `CBLS_SAMPLES` is set.

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::csplib_figure;
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("CBLS_SAMPLES").is_err() {
        config.samples = 30;
    }
    let (table, _) = csplib_figure(&Platform::ha8000(), &config);
    println!("{}", table.to_ascii());
    let _ = table.write_csv(default_figure_dir(), "fig1_ha8000_bench");
}
