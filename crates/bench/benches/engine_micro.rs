//! Criterion micro-benchmarks of the Adaptive Search engine's hot path:
//! incremental swap evaluation, error projection and full sequential solves
//! of the paper's benchmark models at small sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use as_rng::{default_rng, RandomSource};
use cbls_core::{AdaptiveSearch, Evaluator};
use cbls_problems::{AllInterval, CostasArray, MagicSquare, NQueens};

fn bench_cost_if_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_if_swap");
    let mut rng = default_rng(1);

    let mut magic = MagicSquare::new(10);
    let perm = rng.permutation(100);
    let cost = magic.init(&perm);
    group.bench_function("magic-square-10", |b| {
        b.iter(|| black_box(magic.cost_if_swap(&perm, cost, 3, 97)))
    });

    let mut costas = CostasArray::new(18);
    let perm = rng.permutation(18);
    let cost = costas.init(&perm);
    group.bench_function("costas-18", |b| {
        b.iter(|| black_box(costas.cost_if_swap(&perm, cost, 2, 15)))
    });

    let mut interval = AllInterval::new(100);
    let perm = rng.permutation(100);
    let cost = interval.init(&perm);
    group.bench_function("all-interval-100", |b| {
        b.iter(|| black_box(interval.cost_if_swap(&perm, cost, 10, 90)))
    });
    group.finish();
}

fn bench_error_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_on_variable_full_scan");
    let mut rng = default_rng(2);

    let mut costas = CostasArray::new(18);
    let perm = rng.permutation(18);
    let _ = costas.init(&perm);
    group.bench_function("costas-18", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..18 {
                acc += costas.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });

    let mut magic = MagicSquare::new(10);
    let perm = rng.permutation(100);
    let _ = magic.init(&perm);
    group.bench_function("magic-square-10", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..100 {
                acc += magic.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_solve");
    group.sample_size(10);

    for n in [8usize, 10] {
        group.bench_with_input(BenchmarkId::new("costas", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = CostasArray::new(n);
                let engine = AdaptiveSearch::tuned_for(&p);
                black_box(
                    engine
                        .solve(&mut p, &mut default_rng(seed))
                        .stats
                        .iterations,
                )
            })
        });
    }

    group.bench_function("queens-64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut p = NQueens::new(64);
            let engine = AdaptiveSearch::tuned_for(&p);
            black_box(
                engine
                    .solve(&mut p, &mut default_rng(seed))
                    .stats
                    .iterations,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_if_swap,
    bench_error_projection,
    bench_full_solve
);
criterion_main!(benches);
