//! Criterion micro-benchmarks of the Adaptive Search engine's hot path:
//! incremental swap evaluation, error projection and full sequential solves
//! of the paper's benchmark models at small sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use as_rng::{default_rng, RandomSource};
use cbls_core::{AdaptiveSearch, Evaluator};
use cbls_problems::{AllInterval, Benchmark, CostasArray, MagicSquare, NQueens};

/// One full swap-scan's worth of `cost_if_swap` probes for the worst case of
/// the engine's selection phase: variable 0 against every other position.
fn swap_scan<E: Evaluator>(problem: &E, perm: &[usize], cost: i64) -> i64 {
    let mut acc = 0i64;
    for j in 1..perm.len() {
        acc += problem.cost_if_swap(perm, cost, 0, j);
    }
    acc
}

fn bench_cost_if_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_if_swap");
    let mut rng = default_rng(1);

    let mut magic = MagicSquare::new(10);
    let perm = rng.permutation(100);
    let cost = magic.init(&perm);
    group.bench_function("magic-square-10", |b| {
        b.iter(|| black_box(magic.cost_if_swap(&perm, cost, 3, 97)))
    });
    group.bench_function("magic-square-10-scan", |b| {
        b.iter(|| black_box(swap_scan(&magic, &perm, cost)))
    });

    let mut costas = CostasArray::new(14);
    let perm = rng.permutation(14);
    let cost = costas.init(&perm);
    group.bench_function("costas-14", |b| {
        b.iter(|| black_box(costas.cost_if_swap(&perm, cost, 2, 11)))
    });
    group.bench_function("costas-14-scan", |b| {
        b.iter(|| black_box(swap_scan(&costas, &perm, cost)))
    });

    let mut costas = CostasArray::new(18);
    let perm = rng.permutation(18);
    let cost = costas.init(&perm);
    group.bench_function("costas-18", |b| {
        b.iter(|| black_box(costas.cost_if_swap(&perm, cost, 2, 15)))
    });

    let mut interval = AllInterval::new(50);
    let perm = rng.permutation(50);
    let cost = interval.init(&perm);
    group.bench_function("all-interval-50-scan", |b| {
        b.iter(|| black_box(swap_scan(&interval, &perm, cost)))
    });

    let mut interval = AllInterval::new(100);
    let perm = rng.permutation(100);
    let cost = interval.init(&perm);
    group.bench_function("all-interval-100", |b| {
        b.iter(|| black_box(interval.cost_if_swap(&perm, cost, 10, 90)))
    });
    group.finish();
}

fn bench_batched_probes(c: &mut Criterion) {
    // The batching tentpole's headline comparison: one `cost_if_swaps` row
    // against the looped scalar probes it replaces — the exact two shapes
    // the engine's candidate scan picks between on the `batched_probes`
    // claim.  Two declarative models where the shared-state walk dominated
    // (graph coloring, Golomb ruler), one mixed-constraint model (QCP) and
    // one closed-form hand-coded kernel (queens).
    let mut group = c.benchmark_group("batched_probes");
    let mut rng = default_rng(3);

    for bench in [
        Benchmark::GraphColoring {
            nodes: 60,
            colors: 3,
        },
        Benchmark::GolombRuler(8),
        Benchmark::QuasigroupCompletion(10),
        Benchmark::NQueens(64),
    ] {
        let mut evaluator = bench.build();
        let n = evaluator.size();
        let perm = rng.permutation(n);
        let cost = evaluator.init(&perm);
        let js: Vec<usize> = (0..n).collect();
        let mut out = vec![0i64; n];
        let id = bench.id();
        group.bench_function(format!("{id}-looped"), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for &j in &js {
                    acc += evaluator.cost_if_swap(&perm, cost, 0, j);
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("{id}-batched"), |b| {
            b.iter(|| {
                evaluator.cost_if_swaps(&perm, cost, 0, &js, &mut out);
                black_box(out[n - 1])
            })
        });
    }
    group.finish();
}

fn bench_error_projection(c: &mut Criterion) {
    // Per-variable rescans (what the engine did before the cached
    // projection) next to the batched `project_errors_full` pass that now
    // refreshes the cache, for the three instances the tentpole targets.
    let mut group = c.benchmark_group("error_projection");
    let mut rng = default_rng(2);

    let mut costas = CostasArray::new(14);
    let perm = rng.permutation(14);
    let _ = costas.init(&perm);
    let mut out = vec![0i64; 14];
    group.bench_function("costas-14-per-variable", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..14 {
                acc += costas.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });
    group.bench_function("costas-14-batched", |b| {
        b.iter(|| {
            costas.project_errors_full(&perm, &mut out);
            black_box(out[0])
        })
    });

    let mut magic = MagicSquare::new(10);
    let perm = rng.permutation(100);
    let _ = magic.init(&perm);
    let mut out = vec![0i64; 100];
    group.bench_function("magic-square-10-per-variable", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..100 {
                acc += magic.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });
    group.bench_function("magic-square-10-batched", |b| {
        b.iter(|| {
            magic.project_errors_full(&perm, &mut out);
            black_box(out[0])
        })
    });

    let mut interval = AllInterval::new(50);
    let perm = rng.permutation(50);
    let _ = interval.init(&perm);
    let mut out = vec![0i64; 50];
    group.bench_function("all-interval-50-per-variable", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..50 {
                acc += interval.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });
    group.bench_function("all-interval-50-batched", |b| {
        b.iter(|| {
            interval.project_errors_full(&perm, &mut out);
            black_box(out[0])
        })
    });

    let mut costas = CostasArray::new(18);
    let perm = rng.permutation(18);
    let _ = costas.init(&perm);
    group.bench_function("costas-18-per-variable", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for i in 0..18 {
                acc += costas.cost_on_variable(&perm, i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_solve");
    group.sample_size(10);

    for n in [8usize, 10] {
        group.bench_with_input(BenchmarkId::new("costas", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = CostasArray::new(n);
                let engine = AdaptiveSearch::tuned_for(&p);
                black_box(
                    engine
                        .solve(&mut p, &mut default_rng(seed))
                        .stats
                        .iterations,
                )
            })
        });
    }

    group.bench_function("queens-64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut p = NQueens::new(64);
            let engine = AdaptiveSearch::tuned_for(&p);
            black_box(
                engine
                    .solve(&mut p, &mut default_rng(seed))
                    .stats
                    .iterations,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_if_swap,
    bench_batched_probes,
    bench_error_projection,
    bench_full_solve
);
criterion_main!(benches);
