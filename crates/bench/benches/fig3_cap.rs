//! `cargo bench` target regenerating Figure 3 (Costas Array speedups relative
//! to 32 cores, the paper's log-log "ideal speedup" figure).  Uses CAP 12 and
//! a reduced sample count unless `CBLS_CAP_ORDER` / `CBLS_SAMPLES` are set.

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::cap_figure;
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("CBLS_SAMPLES").is_err() {
        config.samples = 30;
    }
    let order = std::env::var("CBLS_CAP_ORDER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);
    match cap_figure(order, &Platform::ha8000(), &config) {
        Some((table, result)) => {
            println!("{}", table.to_ascii());
            println!(
                "CoV of sequential runtime: {:.2} (≈1.0 ⇒ the linear-speedup regime)",
                result.distribution.coefficient_of_variation()
            );
            let _ = table.write_csv(default_figure_dir(), "fig3_cap_bench");
        }
        None => println!("CAP {order}: no solved sequential runs"),
    }
}
