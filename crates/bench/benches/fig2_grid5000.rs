//! `cargo bench` target regenerating Figure 2 (CSPLib speedups on Grid'5000
//! Suno).  Prints the same table as the `fig2_grid5000` binary with a reduced
//! sample count unless `CBLS_SAMPLES` is set.

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::csplib_figure;
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("CBLS_SAMPLES").is_err() {
        config.samples = 30;
    }
    let (table, _) = csplib_figure(&Platform::grid5000_suno(), &config);
    println!("{}", table.to_ascii());
    let _ = table.write_csv(default_figure_dir(), "fig2_grid5000_bench");
}
