//! Criterion benchmark backing the introduction's claim: Adaptive Search vs
//! the propagation-based backtracking baseline on the Costas Array Problem.
//! At small orders the baseline is competitive; its run time explodes with
//! the order while local search keeps scaling — run
//! `cargo run -p cbls-bench --bin baseline_compare` for the full table.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use as_rng::default_rng;
use cbls_core::AdaptiveSearch;
use cbls_problems::CostasArray;
use cbls_propagation::{BacktrackingSolver, CostasConstraint};

fn bench_adaptive_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("costas_adaptive_search");
    group.sample_size(10);
    for n in [9usize, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut p = CostasArray::new(n);
                let engine = AdaptiveSearch::tuned_for(&p);
                black_box(engine.solve(&mut p, &mut default_rng(seed)).solved())
            })
        });
    }
    group.finish();
}

fn bench_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("costas_backtracking");
    group.sample_size(10);
    for n in [9usize, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let solver = BacktrackingSolver::default();
                black_box(solver.solve(&CostasConstraint::new(n)).satisfiable())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive_search, bench_backtracking);
criterion_main!(benches);
