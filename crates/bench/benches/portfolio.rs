//! `cargo bench` target for the portfolio subsystem: replays a heterogeneous
//! restart-schedule portfolio (fixed / Luby / geometric) on the Costas Array
//! Problem and reports the order-statistics *prediction* of the multi-walk
//! speedup next to the *empirically observed* prefix-minimum speedup.
//! `CBLS_CAP_ORDER` and `CBLS_WALKS` override the reduced defaults.

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::portfolio_figure;
use cbls_perfmodel::report::default_figure_dir;

fn main() {
    let config = ExperimentConfig::from_env();
    let order = std::env::var("CBLS_CAP_ORDER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(9);
    let walks = std::env::var("CBLS_WALKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32);
    match portfolio_figure(order, walks, &config) {
        Some((table, experiment)) => {
            println!("{}", table.to_ascii());
            println!(
                "success rate: {:.2}; pooled CoV: {:.2} (≈1.0 ⇒ near-linear speedup regime)",
                experiment.simulation.success_rate(),
                experiment
                    .simulation
                    .iteration_distribution()
                    .expect("solved walks exist")
                    .coefficient_of_variation()
            );
            let _ = table.write_csv(default_figure_dir(), "portfolio_bench");
        }
        None => println!("CAP {order}: no walk solved the instance"),
    }
}
