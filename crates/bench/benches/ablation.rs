//! Ablation of the engine's design choices (DESIGN.md experiment E7): how the
//! freeze duration, the reset policy, sideways moves and the exhaustive
//! neighbourhood affect the time-to-solution of a representative benchmark.
//! These are the knobs the original C framework exposes per benchmark; the
//! ablation quantifies why the shipped `tune()` defaults look the way they do.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use as_rng::default_rng;
use cbls_core::{AdaptiveSearch, Evaluator, SearchConfig};
use cbls_problems::{CostasArray, MagicSquare};

fn solve_with(config: &SearchConfig, seed: u64) -> u64 {
    let mut p = CostasArray::new(10);
    let engine = AdaptiveSearch::new(config.clone());
    engine
        .solve(&mut p, &mut default_rng(seed))
        .stats
        .iterations
}

fn tuned_base() -> SearchConfig {
    let p = CostasArray::new(10);
    let mut config = SearchConfig::default();
    p.tune(&mut config);
    config
}

fn bench_freeze_duration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_freeze_duration");
    group.sample_size(10);
    for freeze in [1u64, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(freeze), &freeze, |b, &f| {
            let mut config = tuned_base();
            config.freeze_duration = f;
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(solve_with(&config, seed))
            })
        });
    }
    group.finish();
}

fn bench_reset_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reset_fraction");
    group.sample_size(10);
    for percent in [5u64, 25, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(percent), &percent, |b, &p| {
            let mut config = tuned_base();
            config.reset_fraction = p as f64 / 100.0;
            let mut seed = 1000;
            b.iter(|| {
                seed += 1;
                black_box(solve_with(&config, seed))
            })
        });
    }
    group.finish();
}

fn bench_plateau_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_plateau_probability");
    group.sample_size(10);
    for percent in [0u64, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(percent), &percent, |b, &p| {
            let mut config = tuned_base();
            config.plateau_probability = p as f64 / 100.0;
            let mut seed = 2000;
            b.iter(|| {
                seed += 1;
                black_box(solve_with(&config, seed))
            })
        });
    }
    group.finish();
}

fn bench_neighbourhood(c: &mut Criterion) {
    // Worst-variable neighbourhood vs exhaustive all-pairs scan on the magic
    // square (where the worst-variable heuristic is the clear winner).
    let mut group = c.benchmark_group("ablation_neighbourhood_magic5");
    group.sample_size(10);
    for exhaustive in [false, true] {
        let label = if exhaustive {
            "exhaustive"
        } else {
            "worst-variable"
        };
        group.bench_function(label, |b| {
            let problem = MagicSquare::new(5);
            let mut config = SearchConfig::default();
            problem.tune(&mut config);
            config.exhaustive = exhaustive;
            let mut seed = 3000;
            b.iter(|| {
                seed += 1;
                let mut p = MagicSquare::new(5);
                let engine = AdaptiveSearch::new(config.clone());
                black_box(
                    engine
                        .solve(&mut p, &mut default_rng(seed))
                        .stats
                        .iterations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_freeze_duration,
    bench_reset_policy,
    bench_plateau_policy,
    bench_neighbourhood
);
criterion_main!(benches);
