//! Engine iteration-throughput measurements (`BENCH_engine.json`).
//!
//! The paper's headline results rest on how fast the *sequential* inner loop
//! of Adaptive Search runs — every multi-walk, portfolio and platform-model
//! figure multiplies through it.  This module measures steady-state
//! iterations per second on fixed seeds and a fixed iteration budget (the
//! target cost is set below zero so the run never terminates early), and
//! emits a JSON report that records the engine's performance trajectory
//! across PRs.
//!
//! Run `cargo run --release -p cbls-bench --bin throughput` for the full
//! measurement, or pass `--quick` for the reduced CI mode.

use std::time::Instant;

use as_rng::default_rng;
use cbls_core::{AdaptiveSearch, Evaluator, IncrementalProfile, SearchConfig, StopControl};
use cbls_obs::{FlightRecorder, RecorderConfig, TraceMeta};
use cbls_parallel::{
    CountingSink, SequentialExecutor, Supervision, WalkBatch, WalkExecutor, WalkJob, WalkSeeds,
};
use cbls_problems::Benchmark;
use serde::{Deserialize, Serialize};

use crate::service_load::{measure_service_throughput, ServiceThroughputResult};

/// Seed shared by all throughput runs (arbitrary but fixed: the measurement
/// must be reproducible run-to-run).
pub const THROUGHPUT_SEED: u64 = 2012;

/// Measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Iterations each measured run performs.
    pub budget: u64,
    /// Independent repetitions; the best (highest iterations/sec) is kept to
    /// suppress scheduler noise.
    pub repetitions: u32,
}

impl ThroughputConfig {
    /// The full measurement used to record `BENCH_engine.json` in the repo.
    #[must_use]
    pub fn full() -> Self {
        Self {
            budget: 200_000,
            repetitions: 5,
        }
    }

    /// The reduced mode CI runs on every PR (small budget, fewer reps).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            budget: 20_000,
            repetitions: 3,
        }
    }
}

/// Iterations/sec of one benchmark under the measurement protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Benchmark id (see [`Benchmark::id`]).
    pub id: String,
    /// Number of decision variables.
    pub variables: usize,
    /// Iterations performed per repetition.
    pub iterations: u64,
    /// Wall-clock seconds of the best repetition.
    pub best_elapsed_secs: f64,
    /// Iterations per second of the best repetition.
    pub iters_per_sec: f64,
}

/// A reference measurement recorded from an earlier engine revision, used to
/// report speedups alongside fresh numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceEntry {
    /// Benchmark id the entry refers to.
    pub id: String,
    /// Iterations per second of the reference engine.
    pub iters_per_sec: f64,
}

/// Cost of the executor layer's telemetry stream on one benchmark: the same
/// fixed-budget run, through the walk executor, with the event stream
/// attached and detached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutorOverheadResult {
    /// Benchmark id (see [`Benchmark::id`]).
    pub id: String,
    /// Iterations performed per repetition.
    pub iterations: u64,
    /// Iterations per second with no event sink attached (best repetition).
    pub iters_per_sec_events_off: f64,
    /// Iterations per second with a counting sink consuming every event
    /// (best repetition).
    pub iters_per_sec_events_on: f64,
    /// `1 − on/off`: the throughput fraction lost to the event stream.
    /// Values near zero (or slightly negative — scheduler noise) mean the
    /// telemetry is effectively free on the engine's hot path.
    pub overhead_fraction: f64,
    /// Number of events the sink consumed in one events-on repetition.
    pub events: u64,
}

/// The full report serialized to `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineThroughputReport {
    /// Report format marker.
    pub schema: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Master seed of every measured run.
    pub seed: u64,
    /// Measurement parameters.
    pub config: ThroughputConfig,
    /// Fresh measurements, one per benchmark.
    pub results: Vec<ThroughputResult>,
    /// Reference numbers from the pre-incremental-projection engine
    /// (captured on the same machine class the repo numbers come from).
    pub reference: Vec<ReferenceEntry>,
    /// `iters_per_sec / reference` per benchmark id, where a reference
    /// exists.
    pub speedup_vs_reference: Vec<ReferenceEntry>,
    /// Batched-vs-scalar candidate-scan ratio per suite benchmark: the same
    /// run with the evaluator's `cost_if_swaps` kernels and behind
    /// [`ScalarProbes`] (claim hidden, scalar fallback scan).
    pub batch_speedup: Vec<BatchSpeedupResult>,
    /// Telemetry cost of the walk-executor layer (events on vs. off) on the
    /// paper's CAP headline instance.
    pub executor_overhead: ExecutorOverheadResult,
    /// Cost of attaching a [`FlightRecorder`] (default configuration, phase
    /// profiling off), one entry per suite benchmark.  The observability
    /// budget is [`RECORDER_OVERHEAD_BUDGET`] of throughput per benchmark.
    pub recorder_overhead: Vec<ExecutorOverheadResult>,
    /// Cost of supervised execution (heartbeat publication at every
    /// stop-poll plus lock-free best-so-far slots), one entry per suite
    /// benchmark.  The resilience budget is [`SUPERVISION_OVERHEAD_BUDGET`]
    /// of throughput per benchmark; the `events` field holds the heartbeats
    /// the supervised run published.
    pub supervision_overhead: Vec<ExecutorOverheadResult>,
    /// Multi-tenant service throughput: requests/sec of a concurrent burst
    /// through `cbls-service`, with every winner audited against a direct
    /// sequential replay (`winners_match_direct` must hold everywhere).
    pub service_throughput: ServiceThroughputResult,
}

/// The acceptance bar for the flight recorder: attaching it may cost at most
/// this fraction of iterations/sec on any suite benchmark (asserted by the
/// throughput binary in full mode).
pub const RECORDER_OVERHEAD_BUDGET: f64 = 0.05;

/// The acceptance bar for the supervision layer: running a batch through
/// `execute_supervised` (heartbeats + best-so-far publication, no faults
/// injected) may cost at most this fraction of iterations/sec on any suite
/// benchmark (asserted by the throughput binary in full mode).
pub const SUPERVISION_OVERHEAD_BUDGET: f64 = 0.05;

/// The benchmark set every throughput report measures: the paper's CAP
/// headline instance, a spread of the other hand-coded catalog models, and
/// the four `cbls-model` declarative benchmarks (which track the generic
/// `ModelEvaluator`'s hot-path cost over PRs).
#[must_use]
pub fn throughput_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::CostasArray(14),
        Benchmark::MagicSquare(10),
        Benchmark::AllInterval(50),
        Benchmark::NQueens(64),
        Benchmark::PerfectSquareOrder9,
        Benchmark::MagicSequence(30),
        Benchmark::GolombRuler(8),
        Benchmark::GraphColoring {
            nodes: 60,
            colors: 3,
        },
        Benchmark::QuasigroupCompletion(10),
    ]
}

/// Iterations/sec of the engine that shipped before the incremental
/// error-projection PR, measured with [`ThroughputConfig::full`] on the
/// machine that recorded the repo's `BENCH_engine.json`.  Kept as data so
/// every later report shows the trajectory against the same fixed point.
/// The model-layer benchmarks post-date that engine, so they have no
/// reference entry and appear in the report without a speedup ratio.
#[must_use]
pub fn pre_projection_reference() -> Vec<ReferenceEntry> {
    [
        ("costas-14", 94_096.0),
        ("magic-square-10", 545_942.0),
        ("all-interval-50", 161_616.0),
        ("queens-64", 181_506.0),
        ("perfect-square-order9", 50_771.0),
    ]
    .into_iter()
    .map(|(id, iters_per_sec)| ReferenceEntry {
        id: id.to_string(),
        iters_per_sec,
    })
    .collect()
}

/// Iterations/sec of the engine that shipped before the batched-probe PR
/// (scalar `cost_if_swap` candidate scans everywhere), measured with
/// [`ThroughputConfig::full`] on the machine that recorded the repo's
/// `BENCH_engine.json`.  The throughput binary asserts the batched engine
/// clears [`BATCH_SPEEDUP_FLOOR`] over these numbers on the two suites the
/// batching PR targeted, in quick mode too, so a regression that quietly
/// re-routes the scan through the scalar fallback fails CI instead of only
/// drifting the recorded trajectory.
#[must_use]
pub fn pre_batching_reference() -> Vec<ReferenceEntry> {
    [
        ("costas-14", 238_400.0),
        ("magic-square-10", 535_531.0),
        ("all-interval-50", 324_912.0),
        ("queens-64", 612_373.0),
        ("perfect-square-order9", 75_923.0),
        ("magic-sequence-30", 598_825.0),
        ("golomb-8", 94_078.0),
        ("coloring-60x3", 44_097.0),
        ("qcp-10", 282_828.0),
    ]
    .into_iter()
    .map(|(id, iters_per_sec)| ReferenceEntry {
        id: id.to_string(),
        iters_per_sec,
    })
    .collect()
}

/// The acceptance floor the throughput binary asserts (quick and full mode)
/// on the batching PR's two target suites, `coloring-60x3` and `golomb-8`:
/// fresh iterations/sec divided by the [`pre_batching_reference`] entry.
pub const BATCH_SPEEDUP_FLOOR: f64 = 1.5;

/// The suites [`BATCH_SPEEDUP_FLOOR`] is enforced on.
pub const BATCH_SPEEDUP_GUARDED: [&str; 2] = ["coloring-60x3", "golomb-8"];

/// An adapter that hides an evaluator's `batched_probes` claim, forcing the
/// engine's candidate scan back onto the scalar row-of-`cost_if_swap`
/// fallback.  Every other hook forwards unchanged, so a run through the
/// wrapper isolates exactly the batched-kernel contribution: same model,
/// same incremental state machine, same trajectory (the batched contract is
/// bit-for-bit agreement), different probe loop.
#[derive(Debug)]
pub struct ScalarProbes<E>(pub E);

impl<E: Evaluator> Evaluator for ScalarProbes<E> {
    fn size(&self) -> usize {
        self.0.size()
    }

    fn name(&self) -> &str {
        self.0.name()
    }

    fn init(&mut self, perm: &[usize]) -> i64 {
        self.0.init(perm)
    }

    fn cost(&self, perm: &[usize]) -> i64 {
        self.0.cost(perm)
    }

    fn cost_on_variable(&self, perm: &[usize], i: usize) -> i64 {
        self.0.cost_on_variable(perm, i)
    }

    fn cost_if_swap(&self, perm: &[usize], current_cost: i64, i: usize, j: usize) -> i64 {
        self.0.cost_if_swap(perm, current_cost, i, j)
    }

    fn executed_swap(&mut self, perm: &[usize], i: usize, j: usize) {
        self.0.executed_swap(perm, i, j);
    }

    fn touched_by_swap(&self, perm: &[usize], i: usize, j: usize, out: &mut Vec<usize>) -> bool {
        self.0.touched_by_swap(perm, i, j, out)
    }

    fn project_errors(&self, perm: &[usize], indices: &[usize], out: &mut [i64]) {
        self.0.project_errors(perm, indices, out);
    }

    fn project_errors_full(&self, perm: &[usize], out: &mut [i64]) {
        self.0.project_errors_full(perm, out);
    }

    fn incremental_profile(&self) -> IncrementalProfile {
        IncrementalProfile {
            batched_probes: false,
            ..self.0.incremental_profile()
        }
    }

    fn tune(&self, config: &mut SearchConfig) {
        self.0.tune(config);
    }

    fn verify(&self, perm: &[usize]) -> bool {
        self.0.verify(perm)
    }
}

/// Batched-vs-scalar candidate-scan throughput of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSpeedupResult {
    /// Benchmark id (see [`Benchmark::id`]).
    pub id: String,
    /// Iterations per second with the evaluator's batched `cost_if_swaps`
    /// row (the engine's normal path when `batched_probes` is claimed).
    pub iters_per_sec_batched: f64,
    /// Iterations per second through [`ScalarProbes`] — the same evaluator
    /// with the claim hidden, scanning via scalar `cost_if_swap` calls.
    pub iters_per_sec_scalar: f64,
    /// `batched / scalar`: > 1 means the batched kernel pays for itself.
    pub speedup: f64,
}

/// Measure the batched-vs-scalar candidate-scan ratio of one benchmark: the
/// identical fixed-budget run twice, once on the evaluator as shipped and
/// once through [`ScalarProbes`].  Both runs follow bit-for-bit the same
/// trajectory (the batched-probe contract), so the ratio isolates the scan
/// kernel's cost and nothing else.
#[must_use]
pub fn measure_batch_speedup(
    benchmark: &Benchmark,
    config: &ThroughputConfig,
) -> BatchSpeedupResult {
    let batched = measure_with(benchmark, config, |b| b.build());
    let scalar = measure_with(benchmark, config, |b| Box::new(ScalarProbes(b.build())));
    BatchSpeedupResult {
        id: benchmark.id(),
        iters_per_sec_batched: batched.iters_per_sec,
        iters_per_sec_scalar: scalar.iters_per_sec,
        speedup: if scalar.iters_per_sec > 0.0 {
            batched.iters_per_sec / scalar.iters_per_sec
        } else {
            0.0
        },
    }
}

/// Measure one benchmark: run exactly `config.budget` iterations
/// (`target_cost` below zero disables early termination) and keep the best
/// repetition.
#[must_use]
pub fn measure(benchmark: &Benchmark, config: &ThroughputConfig) -> ThroughputResult {
    measure_with(benchmark, config, |b| b.build())
}

/// [`measure`] with a custom evaluator factory — the batch-speedup section
/// routes through here to measure the same benchmark behind [`ScalarProbes`].
fn measure_with(
    benchmark: &Benchmark,
    config: &ThroughputConfig,
    build: impl Fn(&Benchmark) -> Box<dyn Evaluator>,
) -> ThroughputResult {
    let mut tuned = benchmark.tuned_config();
    tuned.target_cost = -1;
    let per_restart = tuned.max_iterations_per_restart;
    let engine = AdaptiveSearch::new(tuned);
    // The best (iterations, elapsed) pair is kept together: every repetition
    // is a deterministic replay today, but selecting the pair (rather than
    // the minimum elapsed and the last iteration count separately) stays
    // correct if repetitions ever stop being identical.
    let mut best_elapsed = f64::INFINITY;
    let mut iterations = 0;
    for _ in 0..config.repetitions.max(1) {
        let mut evaluator = build(benchmark);
        let mut rng = default_rng(THROUGHPUT_SEED);
        let mut remaining = config.budget;
        let started = Instant::now();
        let outcome = engine.solve_scheduled(
            &mut evaluator,
            &mut rng,
            &StopControl::new(),
            move |_restart| {
                if remaining == 0 {
                    None
                } else {
                    let slice = per_restart.min(remaining);
                    remaining -= slice;
                    Some(slice)
                }
            },
        );
        let elapsed = started.elapsed().as_secs_f64();
        if outcome.stats.iterations as f64 / elapsed.max(f64::MIN_POSITIVE)
            > iterations as f64 / best_elapsed.max(f64::MIN_POSITIVE)
            || best_elapsed.is_infinite()
        {
            best_elapsed = elapsed;
            iterations = outcome.stats.iterations;
        }
    }
    let iters_per_sec = if best_elapsed > 0.0 {
        iterations as f64 / best_elapsed
    } else {
        0.0
    };
    ThroughputResult {
        id: benchmark.id(),
        variables: benchmark.variables(),
        iterations,
        best_elapsed_secs: best_elapsed,
        iters_per_sec,
    }
}

/// Measure the telemetry cost of the walk-executor layer on one benchmark:
/// run the same fixed iteration budget through [`SequentialExecutor`] with
/// and without an event sink attached, and report both throughputs.
///
/// The acceptance bar for the executor refactor is that the events-on run
/// loses at most a few percent of iterations/sec — the stream only touches
/// the engine's cold edges (restarts, strict best-cost improvements), never
/// the per-iteration hot path.
#[must_use]
pub fn measure_executor_overhead(
    benchmark: &Benchmark,
    config: &ThroughputConfig,
) -> ExecutorOverheadResult {
    let mut tuned = benchmark.tuned_config();
    tuned.target_cost = -1;
    let per_restart = tuned.max_iterations_per_restart;
    let total = config.budget;
    // The budget as a pure function of the restart index (executor jobs share
    // their schedule across threads, so it cannot carry mutable state):
    // per-restart slices until the total budget is consumed.
    let budget = move |restart: u64| {
        let used = restart.saturating_mul(per_restart);
        (used < total).then(|| per_restart.min(total - used))
    };
    let job = WalkJob::new(tuned)
        .with_label(benchmark.id())
        .with_budget(budget);
    let batch = WalkBatch::new(WalkSeeds::new(THROUGHPUT_SEED), vec![job]).run_to_completion();
    let factory = || benchmark.build();

    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut iterations = 0;
    let mut events = 0;
    for _ in 0..config.repetitions.max(1) {
        let off = SequentialExecutor.execute(&factory, &batch);
        let off_iters = off.records[0].outcome.stats.iterations;
        let off_rate = off_iters as f64 / off.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if off_rate > best_off {
            best_off = off_rate;
            iterations = off_iters;
        }

        let sink = CountingSink::new();
        let on = SequentialExecutor.execute_with_telemetry(&factory, &batch, &sink);
        let on_iters = on.records[0].outcome.stats.iterations;
        assert_eq!(
            off_iters, on_iters,
            "telemetry must not perturb the trajectory"
        );
        let on_rate = on_iters as f64 / on.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if on_rate > best_on {
            best_on = on_rate;
            events = sink.count();
        }
    }

    ExecutorOverheadResult {
        id: benchmark.id(),
        iterations,
        iters_per_sec_events_off: best_off,
        iters_per_sec_events_on: best_on,
        overhead_fraction: if best_off > 0.0 {
            1.0 - best_on / best_off
        } else {
            0.0
        },
        events,
    }
}

/// Measure the cost of attaching a [`FlightRecorder`] (default
/// configuration: lifecycle + downsampled trajectory, phase profiling off)
/// to one benchmark: the same fixed-budget run through
/// [`SequentialExecutor`] with no sink and with the recorder as the sink.
///
/// Like [`measure_executor_overhead`], both passes must produce the same
/// trajectory — the recorder is passive by contract — and the `events` field
/// reports the recorder's own `recorder.events` counter.
///
/// Scheduler noise is one-sided — a run can only ever be slowed down, never
/// sped up — so the best rate over repetitions converges to the true
/// throughput from below on both sides of the comparison.  A short fixed
/// budget of reps occasionally leaves one side unlucky (spurious ±5-8%
/// "overhead" readings on a loaded machine, in either direction), so after
/// the configured repetitions this keeps adding paired off/on reps until the
/// overhead estimate settles inside the budget or a hard cap is reached; the
/// full-mode assertion then fails only on a reproducible slowdown.
#[must_use]
pub fn measure_recorder_overhead(
    benchmark: &Benchmark,
    config: &ThroughputConfig,
) -> ExecutorOverheadResult {
    let mut tuned = benchmark.tuned_config();
    tuned.target_cost = -1;
    let per_restart = tuned.max_iterations_per_restart;
    let total = config.budget;
    // Same pure budget-of-restart-index closure as the executor measurement.
    let budget = move |restart: u64| {
        let used = restart.saturating_mul(per_restart);
        (used < total).then(|| per_restart.min(total - used))
    };
    let job = WalkJob::new(tuned)
        .with_label(benchmark.id())
        .with_budget(budget);
    let batch = WalkBatch::new(WalkSeeds::new(THROUGHPUT_SEED), vec![job]).run_to_completion();
    let factory = || benchmark.build();

    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut iterations = 0;
    let mut events = 0;
    let base_reps = config.repetitions.max(1);
    let max_reps = base_reps * 4;
    let mut rep = 0;
    while rep < max_reps {
        rep += 1;
        let off = SequentialExecutor.execute(&factory, &batch);
        let off_iters = off.records[0].outcome.stats.iterations;
        let off_rate = off_iters as f64 / off.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if off_rate > best_off {
            best_off = off_rate;
            iterations = off_iters;
        }

        let recorder = FlightRecorder::new(
            TraceMeta {
                benchmark: benchmark.id(),
                backend: "sequential".to_string(),
                master_seed: THROUGHPUT_SEED,
                walks: 1,
            },
            RecorderConfig::default(),
        );
        let on = SequentialExecutor.execute_with_telemetry(&factory, &batch, &recorder);
        let on_iters = on.records[0].outcome.stats.iterations;
        assert_eq!(
            off_iters, on_iters,
            "the flight recorder must not perturb the trajectory"
        );
        let on_rate = on_iters as f64 / on.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if on_rate > best_on {
            best_on = on_rate;
            events = recorder
                .registry()
                .snapshot()
                .counter("recorder.events")
                .unwrap_or(0);
        }

        // Converged well inside the budget: stop burning wall-clock.  Keep
        // the 20% margin so a borderline pass is backed by extra reps.
        if rep >= base_reps
            && best_off > 0.0
            && 1.0 - best_on / best_off <= RECORDER_OVERHEAD_BUDGET * 0.8
        {
            break;
        }
    }

    ExecutorOverheadResult {
        id: benchmark.id(),
        iterations,
        iters_per_sec_events_off: best_off,
        iters_per_sec_events_on: best_on,
        overhead_fraction: if best_off > 0.0 {
            1.0 - best_on / best_off
        } else {
            0.0
        },
        events,
    }
}

/// Measure the cost of the supervision layer on one benchmark: the same
/// fixed-budget run through [`SequentialExecutor`] plain and through
/// `execute_supervised` with a fresh [`Supervision`] table (heartbeat
/// publication at every stop-poll, best-so-far slots, kill-flag polling) —
/// the fault-free steady state a long campaign pays for all the time.
///
/// Both passes must produce the same trajectory — supervision is passive by
/// contract — and the `events` field reports the heartbeats the supervised
/// run published.  The repetition strategy (best rate, adaptive extra paired
/// reps until the estimate settles inside 80% of the budget) mirrors
/// [`measure_recorder_overhead`]; see there for why.
#[must_use]
pub fn measure_supervision_overhead(
    benchmark: &Benchmark,
    config: &ThroughputConfig,
) -> ExecutorOverheadResult {
    let mut tuned = benchmark.tuned_config();
    tuned.target_cost = -1;
    let per_restart = tuned.max_iterations_per_restart;
    let total = config.budget;
    // Same pure budget-of-restart-index closure as the executor measurement.
    let budget = move |restart: u64| {
        let used = restart.saturating_mul(per_restart);
        (used < total).then(|| per_restart.min(total - used))
    };
    let job = WalkJob::new(tuned)
        .with_label(benchmark.id())
        .with_budget(budget);
    let batch = WalkBatch::new(WalkSeeds::new(THROUGHPUT_SEED), vec![job]).run_to_completion();
    let factory = || benchmark.build();

    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    let mut iterations = 0;
    let mut events = 0;
    let base_reps = config.repetitions.max(1);
    let max_reps = base_reps * 4;
    let mut rep = 0;
    while rep < max_reps {
        rep += 1;
        let off = SequentialExecutor.execute(&factory, &batch);
        let off_iters = off.records[0].outcome.stats.iterations;
        let off_rate = off_iters as f64 / off.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if off_rate > best_off {
            best_off = off_rate;
            iterations = off_iters;
        }

        let supervision = Supervision::new(batch.walks());
        let on = SequentialExecutor.execute_supervised(&factory, &batch, None, &supervision);
        let on_iters = on.records[0].outcome.stats.iterations;
        assert_eq!(
            off_iters, on_iters,
            "supervision must not perturb the trajectory"
        );
        let on_rate = on_iters as f64 / on.wall_time.as_secs_f64().max(f64::MIN_POSITIVE);
        if on_rate > best_on {
            best_on = on_rate;
            events = supervision.heartbeat_of(0);
        }

        if rep >= base_reps
            && best_off > 0.0
            && 1.0 - best_on / best_off <= SUPERVISION_OVERHEAD_BUDGET * 0.8
        {
            break;
        }
    }

    ExecutorOverheadResult {
        id: benchmark.id(),
        iterations,
        iters_per_sec_events_off: best_off,
        iters_per_sec_events_on: best_on,
        overhead_fraction: if best_off > 0.0 {
            1.0 - best_on / best_off
        } else {
            0.0
        },
        events,
    }
}

/// Measure the whole suite and assemble the report.
#[must_use]
pub fn run_report(config: &ThroughputConfig, mode: &str) -> EngineThroughputReport {
    let results: Vec<ThroughputResult> = throughput_suite()
        .iter()
        .map(|b| measure(b, config))
        .collect();
    let reference = pre_projection_reference();
    let speedup_vs_reference = results
        .iter()
        .filter_map(|r| {
            reference
                .iter()
                .find(|e| e.id == r.id)
                .filter(|e| e.iters_per_sec > 0.0)
                .map(|e| ReferenceEntry {
                    id: r.id.clone(),
                    iters_per_sec: r.iters_per_sec / e.iters_per_sec,
                })
        })
        .collect();
    EngineThroughputReport {
        schema: "cbls-bench-engine/1".to_string(),
        mode: mode.to_string(),
        seed: THROUGHPUT_SEED,
        config: *config,
        results,
        reference,
        speedup_vs_reference,
        batch_speedup: throughput_suite()
            .iter()
            .map(|b| measure_batch_speedup(b, config))
            .collect(),
        executor_overhead: measure_executor_overhead(&Benchmark::CostasArray(14), config),
        recorder_overhead: throughput_suite()
            .iter()
            .map(|b| measure_recorder_overhead(b, config))
            .collect(),
        supervision_overhead: throughput_suite()
            .iter()
            .map(|b| measure_supervision_overhead(b, config))
            .collect(),
        service_throughput: measure_service_throughput(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_ids_are_unique_and_reference_entries_all_resolve() {
        let suite = throughput_suite();
        let ids: std::collections::HashSet<String> = suite.iter().map(Benchmark::id).collect();
        assert_eq!(ids.len(), suite.len());
        // Every reference entry must name a measured benchmark (the reverse
        // does not hold: the model-layer benchmarks post-date the reference
        // engine).
        let reference = pre_projection_reference();
        for e in &reference {
            assert!(
                ids.contains(&e.id),
                "reference entry {} is not in the suite",
                e.id
            );
        }
        // The pre-batching snapshot covers the *whole* suite (it was taken
        // after the model-layer benchmarks joined), and the guarded ids are
        // in it.
        let batching = pre_batching_reference();
        assert_eq!(batching.len(), suite.len());
        for e in &batching {
            assert!(
                ids.contains(&e.id),
                "pre-batching entry {} is not in the suite",
                e.id
            );
        }
        for id in BATCH_SPEEDUP_GUARDED {
            assert!(
                batching.iter().any(|e| e.id == id),
                "guarded suite {id} has no pre-batching reference"
            );
        }
        // ... and the model-layer entries are really in the suite.
        for id in ["magic-sequence-30", "golomb-8", "coloring-60x3", "qcp-10"] {
            assert!(ids.contains(id), "model benchmark {id} missing from suite");
        }
    }

    #[test]
    fn measurement_runs_the_exact_budget() {
        let config = ThroughputConfig {
            budget: 500,
            repetitions: 1,
        };
        let result = measure(&Benchmark::NQueens(16), &config);
        assert_eq!(result.iterations, 500);
        assert!(result.iters_per_sec > 0.0);
        assert_eq!(result.id, "queens-16");
    }

    #[test]
    fn report_serializes_and_round_trips() {
        let config = ThroughputConfig {
            budget: 200,
            repetitions: 1,
        };
        let report = run_report(&config, "quick");
        assert_eq!(report.results.len(), throughput_suite().len());
        assert_eq!(
            report.speedup_vs_reference.len(),
            report.reference.len(),
            "every reference entry yields a speedup ratio"
        );
        assert_eq!(report.executor_overhead.id, "costas-14");
        assert_eq!(report.batch_speedup.len(), throughput_suite().len());
        assert_eq!(report.recorder_overhead.len(), throughput_suite().len());
        assert_eq!(report.supervision_overhead.len(), throughput_suite().len());
        assert_eq!(
            report.service_throughput.completed,
            report.service_throughput.requests
        );
        assert!(report.service_throughput.winners_match_direct);
        let json = serde_json::to_string(&report).unwrap();
        let back: EngineThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn scalar_probe_adapter_changes_the_scan_not_the_trajectory() {
        // Through the wrapper, the profile claim is gone but the search is
        // bit-for-bit the same run (same solution, same stats) — that is the
        // batched-probe contract the speedup ratio rests on.
        let bench = Benchmark::GraphColoring {
            nodes: 20,
            colors: 3,
        };
        let mut tuned = bench.tuned_config();
        tuned.target_cost = -1;
        let engine = AdaptiveSearch::new(tuned);
        let run = |scalar: bool| {
            let mut evaluator = if scalar {
                Box::new(ScalarProbes(bench.build())) as Box<dyn Evaluator>
            } else {
                bench.build()
            };
            let mut rng = default_rng(THROUGHPUT_SEED);
            let mut budget = Some(2_000u64);
            engine.solve_scheduled(&mut evaluator, &mut rng, &StopControl::new(), move |_| {
                budget.take()
            })
        };
        let batched = run(false);
        let scalar = run(true);
        assert!(
            !ScalarProbes(bench.build())
                .incremental_profile()
                .batched_probes
        );
        assert_eq!(batched.solution, scalar.solution);
        assert_eq!(batched.stats, scalar.stats);

        let speedup = measure_batch_speedup(
            &bench,
            &ThroughputConfig {
                budget: 400,
                repetitions: 1,
            },
        );
        assert_eq!(speedup.id, "coloring-20x3");
        assert!(speedup.iters_per_sec_batched > 0.0);
        assert!(speedup.iters_per_sec_scalar > 0.0);
        assert!(speedup.speedup > 0.0);
    }

    #[test]
    fn recorder_overhead_is_passive_and_counts_recorder_events() {
        let config = ThroughputConfig {
            budget: 600,
            repetitions: 1,
        };
        let overhead = measure_recorder_overhead(&Benchmark::NQueens(16), &config);
        assert_eq!(overhead.id, "queens-16");
        assert_eq!(overhead.iterations, 600);
        assert!(overhead.iters_per_sec_events_off > 0.0);
        assert!(overhead.iters_per_sec_events_on > 0.0);
        // Started + Finished at minimum, plus restarts and improvements.
        assert!(overhead.events >= 2);
        assert!(overhead.overhead_fraction < 1.0);
    }

    #[test]
    fn supervision_overhead_is_passive_and_counts_heartbeats() {
        let config = ThroughputConfig {
            budget: 600,
            repetitions: 1,
        };
        let overhead = measure_supervision_overhead(&Benchmark::NQueens(16), &config);
        assert_eq!(overhead.id, "queens-16");
        assert_eq!(overhead.iterations, 600);
        assert!(overhead.iters_per_sec_events_off > 0.0);
        assert!(overhead.iters_per_sec_events_on > 0.0);
        // heartbeats are published at every stop-poll of the supervised run
        assert!(overhead.events >= 1);
        assert!(overhead.overhead_fraction < 1.0);
    }

    #[test]
    fn executor_overhead_runs_the_budget_and_counts_events() {
        let config = ThroughputConfig {
            budget: 600,
            repetitions: 1,
        };
        let overhead = measure_executor_overhead(&Benchmark::NQueens(16), &config);
        assert_eq!(overhead.id, "queens-16");
        assert_eq!(overhead.iterations, 600);
        assert!(overhead.iters_per_sec_events_off > 0.0);
        assert!(overhead.iters_per_sec_events_on > 0.0);
        // at least Started + Finished, plus any restart/improvement events
        assert!(overhead.events >= 2);
        assert!(overhead.overhead_fraction < 1.0);
    }
}
