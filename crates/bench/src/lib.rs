//! # cbls-bench — the experiment harness
//!
//! Shared machinery used by the figure-regeneration binaries (`src/bin/*`)
//! and the `cargo bench` targets: collecting sequential runtime
//! distributions, measuring engine throughput, building platform-model
//! predictions and emitting the tables that correspond to the paper's
//! figures.
//!
//! | paper artefact | binary | bench target |
//! |----------------|--------|--------------|
//! | Figure 1 (speedups on HA8000)            | `fig1_ha8000`     | `fig1_ha8000` |
//! | Figure 2 (speedups on Grid'5000 Suno)    | `fig2_grid5000`   | `fig2_grid5000` |
//! | Figure 3 (CAP speedup w.r.t. 32 cores)   | `fig3_cap`        | `fig3_cap` |
//! | headline claim (≈30/40/50+ at 64/128/256)| `summary_table`   | — |
//! | CAP sequential hardness ("n=22 ≈ hours") | `cap_scaling`     | — |
//! | intro claim vs propagation-based solvers | `baseline_compare`| `baseline` |
//! | engine iteration throughput trajectory   | `throughput`      | — |
//! | engine micro-costs                       | —                 | `engine_micro` |
//! | design-choice ablations                  | —                 | `ablation` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod service_load;
pub mod throughput;

pub use experiment::{ExperimentConfig, SequentialSample};
pub use service_load::{measure_service_throughput, ServiceThroughputResult};
pub use throughput::{EngineThroughputReport, ThroughputConfig};
