//! Regeneration of the paper's figures and headline tables.
//!
//! Every public function here corresponds to one artefact of the paper's
//! evaluation section and returns a [`Table`] (plus the underlying
//! predictions) that the binaries print and write to CSV.
//!
//! ## Time dilation (documented substitution)
//!
//! The paper's instances run for minutes to hours sequentially; this
//! repository's scaled-down instances run for milliseconds to seconds.  The
//! *shape* of a multi-walk speedup curve depends only on the normalized
//! runtime distribution, but the absolute run time also matters once the
//! platform's fixed job start-up overhead becomes comparable to the run
//! itself (the effect the paper reports for `perfect-square` at 128/256
//! cores).  To preserve both effects, each benchmark's measured iteration
//! distribution is mapped onto the paper's time scale: the reference
//! throughput is chosen so that the mean sequential run lasts
//! [`paper_scale_seconds`] seconds, mirroring the magnitudes reported in the
//! paper and its companion study.  EXPERIMENTS.md records paper-vs-measured
//! values produced under this mapping.

use cbls_parallel::speedup::{mean_speedup_by_cores, SpeedupCurve};
use cbls_perfmodel::report::{fmt_f64, Table};
use cbls_perfmodel::{EmpiricalDistribution, Platform, SpeedupModel, SpeedupPrediction};
use cbls_portfolio::{Portfolio, PortfolioMember, Schedule, SimulatedPortfolio, SpeedupComparison};
use cbls_problems::{Benchmark, CostasArray};
use cbls_propagation::{BacktrackingSolver, CostasConstraint};
use std::time::Instant;

use crate::experiment::{
    collect_sequential_samples, iteration_distribution, median_throughput, success_rate,
    ExperimentConfig,
};

/// The sequential wall-clock scale (seconds) each benchmark is mapped onto,
/// matching the order of magnitude of the paper's runs: the CSPLib models run
/// for minutes, `perfect-square` only for a few seconds (which is why its
/// curve degrades at high core counts), and the Costas Array Problem for
/// about an hour at the scaled size (hours at n = 22).
#[must_use]
pub fn paper_scale_seconds(benchmark: &Benchmark) -> f64 {
    match benchmark {
        Benchmark::PerfectSquareCsplib | Benchmark::PerfectSquareOrder9 => 4.0,
        Benchmark::AllInterval(_) => 120.0,
        Benchmark::MagicSquare(_) => 240.0,
        Benchmark::CostasArray(_) => 3600.0,
        _ => 60.0,
    }
}

/// Reference throughput (iterations/second) that maps `dist`'s mean onto
/// `target_seconds` of sequential wall-clock time.
#[must_use]
pub fn paper_scale_throughput(dist: &EmpiricalDistribution, target_seconds: f64) -> f64 {
    assert!(target_seconds > 0.0);
    (dist.mean() / target_seconds).max(f64::MIN_POSITIVE)
}

/// The result of one benchmark's speedup experiment on one platform.
#[derive(Debug, Clone)]
pub struct BenchmarkSpeedup {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Success rate of the sequential sample collection.
    pub success_rate: f64,
    /// Measured sequential iteration distribution.
    pub distribution: EmpiricalDistribution,
    /// Locally measured engine throughput (iterations/second).
    pub local_throughput: f64,
    /// Prediction on the modelled platform.
    pub prediction: SpeedupPrediction,
}

/// Run the speedup experiment of Figures 1 and 2 for one benchmark on one
/// platform.  Returns `None` when no sequential sample solved the instance.
#[must_use]
pub fn benchmark_speedup(
    benchmark: &Benchmark,
    platform: &Platform,
    config: &ExperimentConfig,
    baseline_cores: usize,
) -> Option<BenchmarkSpeedup> {
    let samples = collect_sequential_samples(benchmark, config);
    let distribution = iteration_distribution(&samples)?;
    let local_throughput = median_throughput(&samples);
    let scaled_throughput = paper_scale_throughput(&distribution, paper_scale_seconds(benchmark));
    let model = SpeedupModel::new(
        benchmark.label(),
        distribution.clone(),
        scaled_throughput,
        platform.clone(),
    );
    let mut cores = config.core_counts.clone();
    if !cores.contains(&baseline_cores) {
        cores.push(baseline_cores);
    }
    let prediction = model.predict(&cores, baseline_cores);
    Some(BenchmarkSpeedup {
        benchmark: benchmark.clone(),
        success_rate: success_rate(&samples),
        distribution,
        local_throughput,
        prediction,
    })
}

/// Figure 1 / Figure 2: speedups of the three CSPLib benchmarks on a given
/// platform.  Returns the table (rows = core counts, one column per
/// benchmark, plus the ideal speedup) and the per-benchmark results.
#[must_use]
pub fn csplib_figure(
    platform: &Platform,
    config: &ExperimentConfig,
) -> (Table, Vec<BenchmarkSpeedup>) {
    let benchmarks = Benchmark::csplib_suite();
    let results: Vec<BenchmarkSpeedup> = benchmarks
        .iter()
        .filter_map(|b| benchmark_speedup(b, platform, config, 1))
        .collect();

    let mut header: Vec<String> = vec!["cores".to_string()];
    header.extend(results.iter().map(|r| r.benchmark.label()));
    header.push("ideal".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("speedups on {} (vs 1 core)", platform.name),
        &header_refs,
    );

    let mut cores = config.core_counts.clone();
    cores.sort_unstable();
    cores.dedup();
    for &c in &cores {
        let mut row = vec![c.to_string()];
        for r in &results {
            row.push(
                r.prediction
                    .speedup_at(c)
                    .map_or_else(|| "-".to_string(), fmt_f64),
            );
        }
        row.push(fmt_f64(c as f64));
        table.push_row(row);
    }
    (table, results)
}

/// Figure 3: Costas Array speedups relative to 32 cores (log-log in the
/// paper).  Returns the table and the underlying prediction.
#[must_use]
pub fn cap_figure(
    cap_order: usize,
    platform: &Platform,
    config: &ExperimentConfig,
) -> Option<(Table, BenchmarkSpeedup)> {
    let benchmark = Benchmark::CostasArray(cap_order);
    let mut cores: Vec<usize> = config
        .core_counts
        .iter()
        .copied()
        .filter(|&c| c >= 32)
        .collect();
    if cores.is_empty() {
        cores = vec![32, 64, 128, 256];
    }
    let cap_config = ExperimentConfig {
        core_counts: cores.clone(),
        ..config.clone()
    };
    let result = benchmark_speedup(&benchmark, platform, &cap_config, 32)?;

    let mut table = Table::new(
        format!(
            "CAP {cap_order} speedups w.r.t. 32 cores on {} (paper: CAP 22, ideal = cores/32)",
            platform.name
        ),
        &[
            "cores",
            "speedup_vs_32",
            "ideal",
            "efficiency",
            "log2_cores",
            "log2_speedup",
        ],
    );
    for point in &result.prediction.points {
        if point.cores < 32 {
            continue;
        }
        table.push_row(vec![
            point.cores.to_string(),
            fmt_f64(point.speedup),
            fmt_f64(point.ideal_speedup),
            fmt_f64(point.speedup / point.ideal_speedup),
            fmt_f64((point.cores as f64).log2()),
            fmt_f64(point.speedup.max(f64::MIN_POSITIVE).log2()),
        ]);
    }
    Some((table, result))
}

/// Companion to Figure 3: how the CAP speedup at 256 vs 32 cores approaches
/// the ideal factor of 8 as the order grows ("the bigger the benchmark, the
/// better the speedup").  The paper's n = 22 sits deep in this trend; the
/// scaled-down orders measured here show the approach to the ideal regime.
#[must_use]
pub fn cap_order_trend_table(
    orders: &[usize],
    platform: &Platform,
    config: &ExperimentConfig,
) -> Table {
    let mut table = Table::new(
        "CAP speedup at 256 cores (vs 32) as the order grows",
        &[
            "order",
            "mean_iterations",
            "CoV",
            "speedup_256_vs_32",
            "ideal",
        ],
    );
    for &order in orders {
        let sweep = ExperimentConfig {
            core_counts: vec![32, 64, 128, 256],
            ..config.clone()
        };
        if let Some(result) =
            benchmark_speedup(&Benchmark::CostasArray(order), platform, &sweep, 32)
        {
            table.push_row(vec![
                order.to_string(),
                fmt_f64(result.distribution.mean()),
                fmt_f64(result.distribution.coefficient_of_variation()),
                fmt_f64(result.prediction.speedup_at(256).unwrap_or(0.0)),
                fmt_f64(8.0),
            ]);
        }
    }
    table
}

/// The paper's headline claim: mean CSPLib speedups of "about 30 with 64
/// cores, 40 with 128 and more than 50 with 256", plus linearity of the CAP
/// curve.  Returns the summary table.
#[must_use]
pub fn summary_table(config: &ExperimentConfig, cap_order: usize) -> Table {
    let platform = Platform::ha8000();
    let (_, results) = csplib_figure(&platform, config);
    let curves: Vec<SpeedupCurve> = results
        .iter()
        .map(|r| {
            let measurements: Vec<(usize, f64)> = r
                .prediction
                .points
                .iter()
                .map(|p| (p.cores, p.expected_seconds))
                .collect();
            SpeedupCurve::from_measurements(r.benchmark.label(), 1, &measurements)
        })
        .collect();
    let means = mean_speedup_by_cores(&curves);

    let paper_claim = |cores: usize| -> &'static str {
        match cores {
            64 => "about 30",
            128 => "about 40",
            256 => "more than 50",
            _ => "-",
        }
    };

    let mut table = Table::new(
        "headline summary: mean CSPLib speedup vs paper claim (HA8000)",
        &["cores", "mean_speedup_measured", "paper_claim"],
    );
    for (cores, mean) in &means {
        if *cores == 1 {
            continue;
        }
        table.push_row(vec![
            cores.to_string(),
            fmt_f64(*mean),
            paper_claim(*cores).to_string(),
        ]);
    }

    // CAP linearity, appended as extra rows.
    if let Some((_, cap)) = cap_figure(cap_order, &platform, config) {
        let measurements: Vec<(usize, f64)> = cap
            .prediction
            .points
            .iter()
            .map(|p| (p.cores, p.expected_seconds))
            .collect();
        let curve = SpeedupCurve::from_measurements("cap", 32, &measurements);
        let ideal = curve.is_nearly_ideal(0.25);
        table.push_row(vec![
            format!("CAP-{cap_order} (vs 32)"),
            if ideal {
                "near-ideal".to_string()
            } else {
                "sub-ideal".to_string()
            },
            "linear (ideal)".to_string(),
        ]);
    }
    table
}

/// The "bigger benchmark ⇒ better speedup" observation: speedups at a fixed
/// core count for two sizes of the same model.
#[must_use]
pub fn size_scaling_table(config: &ExperimentConfig, cores: usize) -> Table {
    let platform = Platform::ha8000();
    let pairs: Vec<(Benchmark, Benchmark)> = vec![
        (Benchmark::MagicSquare(5), Benchmark::MagicSquare(6)),
        (Benchmark::AllInterval(14), Benchmark::AllInterval(18)),
        (Benchmark::CostasArray(10), Benchmark::CostasArray(12)),
    ];
    let mut table = Table::new(
        format!("speedup at {cores} cores for two instance sizes (bigger ⇒ better)"),
        &[
            "model",
            "small_instance",
            "speedup_small",
            "large_instance",
            "speedup_large",
        ],
    );
    for (small, large) in pairs {
        let sweep = ExperimentConfig {
            core_counts: vec![1, cores],
            ..config.clone()
        };
        let s = benchmark_speedup(&small, &platform, &sweep, 1);
        let l = benchmark_speedup(&large, &platform, &sweep, 1);
        if let (Some(s), Some(l)) = (s, l) {
            table.push_row(vec![
                small
                    .label()
                    .split_whitespace()
                    .next()
                    .unwrap_or("?")
                    .to_string(),
                small.label(),
                fmt_f64(s.prediction.speedup_at(cores).unwrap_or(0.0)),
                large.label(),
                fmt_f64(l.prediction.speedup_at(cores).unwrap_or(0.0)),
            ]);
        }
    }
    table
}

/// CAP sequential-hardness scaling (the paper: "finding big instances of
/// Costas arrays, such as n = 22, takes many hours in sequential
/// computation ... about one minute on average with 256 cores").  Measures
/// mean sequential iterations for a range of orders, fits the exponential
/// growth rate and extrapolates to the target order.
#[must_use]
pub fn cap_scaling_table(
    config: &ExperimentConfig,
    orders: &[usize],
    target_order: usize,
) -> Table {
    let mut table = Table::new(
        format!("CAP sequential hardness and extrapolation to n = {target_order}"),
        &[
            "order",
            "mean_iterations",
            "success_rate",
            "mean_seconds_local",
        ],
    );
    let mut log_means: Vec<(f64, f64)> = Vec::new();
    for &n in orders {
        let samples = collect_sequential_samples(&Benchmark::CostasArray(n), config);
        let rate = success_rate(&samples);
        if let Some(dist) = iteration_distribution(&samples) {
            let throughput = median_throughput(&samples);
            let mean_secs = dist.mean() / throughput.max(1.0);
            table.push_row(vec![
                n.to_string(),
                fmt_f64(dist.mean()),
                fmt_f64(rate),
                fmt_f64(mean_secs),
            ]);
            log_means.push((n as f64, dist.mean().ln()));
        }
    }
    // least-squares fit of ln(iterations) = a + b n
    if log_means.len() >= 2 {
        let n = log_means.len() as f64;
        let sx: f64 = log_means.iter().map(|(x, _)| x).sum();
        let sy: f64 = log_means.iter().map(|(_, y)| y).sum();
        let sxx: f64 = log_means.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = log_means.iter().map(|(x, y)| x * y).sum();
        let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let a = (sy - b * sx) / n;
        let predicted_iters = (a + b * target_order as f64).exp();
        table.push_row(vec![
            format!("{target_order} (extrapolated)"),
            fmt_f64(predicted_iters),
            "-".to_string(),
            "-".to_string(),
        ]);
        table.push_row(vec![
            "growth rate".to_string(),
            format!("x{:.2} per +1 order", b.exp()),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table
}

/// The introduction's claim: local search reaches instances "far beyond the
/// reach of classical propagation-based solvers".  Compares Adaptive Search
/// iterations/time against backtracking nodes/time on growing CAP orders.
#[must_use]
pub fn baseline_comparison_table(config: &ExperimentConfig, orders: &[usize]) -> Table {
    let mut table = Table::new(
        "Adaptive Search vs propagation-based backtracking on the CAP",
        &[
            "order",
            "as_mean_iterations",
            "as_mean_seconds",
            "bt_nodes_first_solution",
            "bt_seconds",
        ],
    );
    for &n in orders {
        let samples = collect_sequential_samples(&Benchmark::CostasArray(n), config);
        let (as_iters, as_secs) = match iteration_distribution(&samples) {
            Some(dist) => {
                let throughput = median_throughput(&samples);
                (dist.mean(), dist.mean() / throughput.max(1.0))
            }
            None => (f64::NAN, f64::NAN),
        };
        let solver = BacktrackingSolver::default();
        let started = Instant::now();
        let outcome = solver.solve(&CostasConstraint::new(n));
        let bt_secs = started.elapsed().as_secs_f64();
        table.push_row(vec![
            n.to_string(),
            fmt_f64(as_iters),
            fmt_f64(as_secs),
            outcome.nodes.to_string(),
            fmt_f64(bt_secs),
        ]);
    }
    table
}

/// The default heterogeneous strategy portfolio for the Costas Array
/// Problem: the paper's fixed restart policy, a Luby schedule and a
/// geometric schedule, all over the CAP-tuned engine parameters, cycled over
/// `walks` walks.
#[must_use]
pub fn costas_portfolio(order: usize, walks: usize, master_seed: u64) -> Portfolio {
    let tuned = Benchmark::CostasArray(order).tuned_config();
    let slice = tuned.max_iterations_per_restart;
    let prototypes = vec![
        PortfolioMember::new("fixed", tuned.clone(), Schedule::of_config(&tuned)),
        PortfolioMember::new("luby", tuned.clone(), Schedule::luby(slice / 8, 10_000)),
        PortfolioMember::new("geometric", tuned, Schedule::geometric(slice / 8, 2.0, 40)),
    ];
    Portfolio::cycled(&prototypes, walks).with_master_seed(master_seed)
}

/// The result of one portfolio experiment on the Costas Array Problem.
#[derive(Debug, Clone)]
pub struct PortfolioExperiment {
    /// The portfolio that was replayed.
    pub portfolio: Portfolio,
    /// The deterministic replay of every walk.
    pub simulation: SimulatedPortfolio,
    /// Predicted-vs-observed speedup, one row per walk count.
    pub comparisons: Vec<SpeedupComparison>,
}

/// Predicted-vs-empirical portfolio speedup on the Costas Array Problem: a
/// heterogeneous portfolio (fixed / Luby / geometric restarts over the
/// CAP-tuned parameters) is replayed deterministically, its solved walks are
/// pooled into an empirical distribution, and the order-statistics
/// prediction `E[min of p draws]` is tabled against the observed prefix
/// minimum for each walk count `p`.  Returns `None` when no walk solved the
/// instance.
#[must_use]
pub fn portfolio_figure(
    order: usize,
    walks: usize,
    config: &ExperimentConfig,
) -> Option<(Table, PortfolioExperiment)> {
    let portfolio = costas_portfolio(order, walks, config.master_seed);
    let simulation = SimulatedPortfolio::replay_parallel(&|| CostasArray::new(order), &portfolio);
    let walk_counts: Vec<usize> = (0..)
        .map(|k| 1usize << k)
        .take_while(|&p| p <= walks)
        .collect();
    let comparisons = simulation.predicted_vs_observed(&walk_counts)?;

    let mut table = Table::new(
        format!(
            "CAP {order} portfolio (fixed/luby/geometric, {walks} walks): predicted vs empirical speedup"
        ),
        &[
            "walks",
            "predicted_iters",
            "observed_iters",
            "predicted_speedup",
            "observed_speedup",
        ],
    );
    for row in &comparisons {
        table.push_row(vec![
            row.walks.to_string(),
            fmt_f64(row.predicted_iterations),
            row.observed_iterations
                .map_or_else(|| "-".to_string(), |i| i.to_string()),
            fmt_f64(row.predicted_speedup),
            row.observed_speedup
                .map_or_else(|| "-".to_string(), fmt_f64),
        ]);
    }
    Some((
        table,
        PortfolioExperiment {
            portfolio,
            simulation,
            comparisons,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            samples: 5,
            master_seed: 77,
            core_counts: vec![1, 4, 16, 64],
        }
    }

    #[test]
    fn paper_scales_are_positive_and_rank_correctly() {
        let ps = paper_scale_seconds(&Benchmark::PerfectSquareOrder9);
        let ai = paper_scale_seconds(&Benchmark::AllInterval(24));
        let cap = paper_scale_seconds(&Benchmark::CostasArray(12));
        assert!(ps > 0.0 && ps < ai && ai < cap);
    }

    #[test]
    fn benchmark_speedup_produces_a_monotone_curve() {
        let result = benchmark_speedup(
            &Benchmark::NQueens(16),
            &Platform::ha8000(),
            &tiny_config(),
            1,
        )
        .expect("queens solves");
        assert!((result.success_rate - 1.0).abs() < 1e-12);
        let speedups: Vec<f64> = result.prediction.points.iter().map(|p| p.speedup).collect();
        assert!(speedups.windows(2).all(|w| w[1] >= w[0] * 0.999));
    }

    #[test]
    fn csplib_figure_has_one_row_per_core_count() {
        // Use a cheap substitute suite by exercising the function end-to-end
        // with the tiny config (the real suite is used by the binaries).
        let (table, results) = csplib_figure(&Platform::grid5000_suno(), &tiny_config());
        assert!(!results.is_empty());
        assert_eq!(table.len(), 4); // 1, 4, 16, 64
    }

    #[test]
    fn cap_figure_is_relative_to_32_cores() {
        let cfg = ExperimentConfig {
            samples: 5,
            master_seed: 3,
            core_counts: vec![32, 64, 128],
        };
        let (_table, result) =
            cap_figure(9, &Platform::ha8000(), &cfg).expect("CAP 9 solves quickly");
        assert!((result.prediction.speedup_at(32).unwrap() - 1.0).abs() < 1e-9);
        assert!(result.prediction.speedup_at(128).unwrap() >= 1.0);
    }

    #[test]
    fn portfolio_figure_compares_prediction_and_observation() {
        let cfg = ExperimentConfig {
            samples: 4,
            master_seed: 13,
            core_counts: vec![1, 4],
        };
        let (table, experiment) = portfolio_figure(8, 8, &cfg).expect("CAP 8 solves quickly");
        assert_eq!(table.len(), 4); // walks = 1, 2, 4, 8
        assert_eq!(experiment.portfolio.walks(), 8);
        assert_eq!(experiment.comparisons.len(), 4);
        // the replay pools at least one solved walk, so a distribution exists
        assert!(experiment.simulation.iteration_distribution().is_some());
        // three distinct strategies ran
        let labels: std::collections::HashSet<&str> = experiment
            .simulation
            .runs()
            .iter()
            .map(|r| r.member_label.as_str())
            .collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn baseline_table_has_one_row_per_order() {
        let table = baseline_comparison_table(&tiny_config(), &[6, 8]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn cap_scaling_extrapolates() {
        let table = cap_scaling_table(&tiny_config(), &[7, 8, 9], 22);
        // measured rows + extrapolation + growth rate
        assert!(table.len() >= 4);
    }
}
