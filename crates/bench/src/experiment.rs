//! Collection of sequential runtime distributions and engine throughput.

use std::time::Instant;

use cbls_core::{AdaptiveSearch, SearchConfig, StopControl};
use cbls_parallel::WalkSeeds;
use cbls_perfmodel::EmpiricalDistribution;
use cbls_problems::Benchmark;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration shared by the figure experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of independent sequential runs per benchmark (the paper's
    /// companion study uses 50; more samples give smoother order statistics).
    pub samples: usize,
    /// Master seed of the whole experiment.
    pub master_seed: u64,
    /// Core counts to sweep (the paper uses 16..256 in powers of two; 1 is
    /// added automatically when needed as a speedup baseline).
    pub core_counts: Vec<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            samples: 100,
            master_seed: 0x5EED,
            core_counts: vec![1, 16, 32, 64, 128, 256],
        }
    }
}

impl ExperimentConfig {
    /// Read overrides from the environment: `CBLS_SAMPLES`, `CBLS_SEED`
    /// (useful to shrink the figure runs on slow machines or expand them for
    /// a full reproduction).
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(samples) = std::env::var("CBLS_SAMPLES") {
            if let Ok(samples) = samples.parse::<usize>() {
                config.samples = samples.max(2);
            }
        }
        if let Ok(seed) = std::env::var("CBLS_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                config.master_seed = seed;
            }
        }
        config
    }
}

/// One sequential run: iteration count and wall-clock throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialSample {
    /// Run index (also the seed index).
    pub run: usize,
    /// Whether the run found a solution within its budget.
    pub solved: bool,
    /// Iterations performed.
    pub iterations: u64,
    /// Iterations per second achieved on the local machine.
    pub iterations_per_second: f64,
}

/// Collect `samples` independent sequential runs of `benchmark`, each with
/// its own derived seed (run `i` of a benchmark is always the same walk, no
/// matter how many samples are collected).
#[must_use]
pub fn collect_sequential_samples(
    benchmark: &Benchmark,
    config: &ExperimentConfig,
) -> Vec<SequentialSample> {
    let search: SearchConfig = benchmark.tuned_config();
    let engine = AdaptiveSearch::new(search);
    let seeds = WalkSeeds::new(config.master_seed ^ fxhash(benchmark.id().as_bytes()));
    (0..config.samples)
        .into_par_iter()
        .map(|run| {
            let mut evaluator = benchmark.build();
            let mut rng = seeds.rng_of(run);
            let started = Instant::now();
            let outcome = engine.solve_with_stop(&mut evaluator, &mut rng, &StopControl::new());
            let elapsed = started.elapsed().as_secs_f64();
            let iterations_per_second = if elapsed > 0.0 {
                outcome.stats.iterations as f64 / elapsed
            } else {
                0.0
            };
            SequentialSample {
                run,
                solved: outcome.solved(),
                iterations: outcome.stats.iterations,
                iterations_per_second,
            }
        })
        .collect()
}

/// Build the empirical distribution of iterations-to-solution from the solved
/// samples.  Returns `None` when no run solved the instance (the figure
/// binaries report this instead of fabricating a curve).
#[must_use]
pub fn iteration_distribution(samples: &[SequentialSample]) -> Option<EmpiricalDistribution> {
    let solved: Vec<u64> = samples
        .iter()
        .filter(|s| s.solved && s.iterations > 0)
        .map(|s| s.iterations)
        .collect();
    if solved.is_empty() {
        None
    } else {
        Some(EmpiricalDistribution::from_counts(&solved))
    }
}

/// Median engine throughput (iterations per second) over the samples, used
/// as the reference-core speed when converting iterations to simulated
/// seconds.
#[must_use]
pub fn median_throughput(samples: &[SequentialSample]) -> f64 {
    let mut rates: Vec<f64> = samples
        .iter()
        .map(|s| s.iterations_per_second)
        .filter(|r| *r > 0.0)
        .collect();
    if rates.is_empty() {
        return 1.0;
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

/// Fraction of samples that solved the instance.
#[must_use]
pub fn success_rate(samples: &[SequentialSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| s.solved).count() as f64 / samples.len() as f64
}

/// A tiny stable hash used to decorrelate per-benchmark seed families.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            samples: 6,
            master_seed: 1,
            core_counts: vec![1, 4, 16],
        }
    }

    #[test]
    fn samples_are_collected_for_every_run() {
        let samples = collect_sequential_samples(&Benchmark::NQueens(12), &tiny_config());
        assert_eq!(samples.len(), 6);
        assert!(samples.iter().all(|s| s.solved));
        assert!(samples.iter().all(|s| s.iterations_per_second >= 0.0));
        // runs are indexed consecutively
        let mut runs: Vec<usize> = samples.iter().map(|s| s.run).collect();
        runs.sort_unstable();
        assert_eq!(runs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn collection_is_deterministic_in_iterations() {
        let a = collect_sequential_samples(&Benchmark::CostasArray(9), &tiny_config());
        let b = collect_sequential_samples(&Benchmark::CostasArray(9), &tiny_config());
        let ia: Vec<u64> = a.iter().map(|s| s.iterations).collect();
        let ib: Vec<u64> = b.iter().map(|s| s.iterations).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn distribution_and_throughput_are_derived() {
        let samples = collect_sequential_samples(&Benchmark::Langford(7), &tiny_config());
        let dist = iteration_distribution(&samples).expect("some runs solve");
        assert!(dist.mean() > 0.0);
        assert!(median_throughput(&samples) > 0.0);
        assert!((success_rate(&samples) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsolved_samples_produce_no_distribution() {
        let samples = vec![SequentialSample {
            run: 0,
            solved: false,
            iterations: 10,
            iterations_per_second: 1.0,
        }];
        assert!(iteration_distribution(&samples).is_none());
        assert_eq!(success_rate(&samples), 0.0);
        assert_eq!(success_rate(&[]), 0.0);
    }

    #[test]
    fn env_overrides_are_optional() {
        let config = ExperimentConfig::from_env();
        assert!(config.samples >= 2);
    }

    #[test]
    fn benchmark_seed_families_differ() {
        assert_ne!(fxhash(b"magic-square-6"), fxhash(b"all-interval-24"));
    }
}
