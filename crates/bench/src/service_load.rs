//! Service-level throughput: how many concurrent solve requests the
//! `cbls-service` layer completes per second, and whether multiplexing
//! preserved the executor's bit-reproducibility contract.
//!
//! The measurement drives a [`SolveService`] the way a multi-tenant client
//! would: a burst of requests across several benchmarks is admitted before
//! any completes, the pool drains them, and every result is then audited
//! against a direct [`SequentialExecutor`] run of the same batch
//! ([`SolveService::batch_for`] is the replay path).  `winners_match_direct`
//! must hold on every machine — it is a determinism check, not a
//! performance number — while `requests_per_sec` records the multiplexing
//! throughput into `BENCH_engine.json`.

use cbls_parallel::{SequentialExecutor, WalkExecutor};
use cbls_problems::Benchmark;
use cbls_service::{ServiceConfig, SolveRequest, SolveService};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::throughput::ThroughputConfig;

/// The request mix of the measurement: fast-solving instances from three
/// benchmark families, so the burst exercises prototype-cache sharing and
/// cross-benchmark quoting rather than one hot shape.
const SERVICE_MIX: [(&str, usize); 4] = [
    ("queens-16", 4),
    ("costas-10", 4),
    ("all-interval-12", 2),
    ("queens-12", 3),
];

/// Throughput and determinism of one service burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceThroughputResult {
    /// Worker threads the service ran.
    pub workers: usize,
    /// Requests submitted (all admitted before the first completion).
    pub requests: usize,
    /// Requests that completed (must equal `requests`).
    pub completed: usize,
    /// Completed requests that solved their instance.
    pub solved: usize,
    /// Completions per second over the burst.
    pub requests_per_sec: f64,
    /// Whether every job's winner (index, seed, iteration count) matched a
    /// direct sequential replay of its batch — the bit-reproducibility
    /// audit.
    pub winners_match_direct: bool,
    /// Wall-clock time of the whole burst, in milliseconds.
    pub wall_ms: u64,
}

/// Drive a burst of twice the request mix (8 concurrent requests over four
/// benchmark shapes) through a 4-worker service and audit every result
/// against a direct executor run.
#[must_use]
pub fn measure_service_throughput(config: &ThroughputConfig) -> ServiceThroughputResult {
    let workers = 4;
    let service = SolveService::new(
        ServiceConfig::default()
            .with_workers(workers)
            .with_queue_capacity(2 * SERVICE_MIX.len() + 1),
    );

    let requests: Vec<SolveRequest> = (0..2 * SERVICE_MIX.len())
        .map(|i| {
            let (bench, walks) = SERVICE_MIX[i % SERVICE_MIX.len()];
            SolveRequest::new(bench, walks, config.budget).with_master_seed(2012 + i as u64)
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|request| {
            service
                .submit(request.clone())
                .expect("burst fits the queue")
        })
        .collect();
    let completions: Vec<_> = handles
        .into_iter()
        .filter_map(cbls_service::JobHandle::wait)
        .collect();
    let elapsed = started.elapsed();

    let mut winners_match_direct = true;
    for (request, completed) in requests.iter().zip(&completions) {
        let batch = service.batch_for(request).expect("known benchmark");
        let bench = Benchmark::from_id(&request.benchmark).expect("known benchmark");
        let direct = SequentialExecutor.execute(&|| bench.build(), &batch);
        let direct_winner = direct.winning_record();
        let service_winner = completed.execution.execution.winning_record();
        let matched = match (service_winner, direct_winner) {
            (Some(s), Some(d)) => {
                s.walk_id == d.walk_id
                    && s.seed == d.seed
                    && s.outcome.stats.iterations == d.outcome.stats.iterations
            }
            (None, None) => completed.result.winner == direct.winner,
            _ => false,
        };
        winners_match_direct &= matched;
    }

    let completed = completions.len();
    let solved = completions.iter().filter(|c| c.result.solved).count();
    service.shutdown();
    ServiceThroughputResult {
        workers,
        requests: requests.len(),
        completed,
        solved,
        requests_per_sec: completed as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        winners_match_direct,
        wall_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quick_burst_completes_everything_and_matches_direct_runs() {
        let result = measure_service_throughput(&ThroughputConfig::quick());
        assert_eq!(result.requests, 8);
        assert_eq!(result.completed, 8);
        assert!(result.requests >= 4, "the burst must be concurrent");
        assert!(result.winners_match_direct);
        assert!(result.requests_per_sec > 0.0);
        let json = serde_json::to_string(&result).unwrap();
        let back: ServiceThroughputResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }
}
