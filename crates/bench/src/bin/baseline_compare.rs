//! The introduction's motivating claim: constraint-based local search "can
//! tackle CSP instances far beyond the reach of classical propagation-based
//! solvers".  Compares Adaptive Search against the backtracking baseline on
//! growing Costas Array orders.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin baseline_compare
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::baseline_comparison_table;
use cbls_perfmodel::report::default_figure_dir;

fn main() {
    let config = ExperimentConfig::from_env();
    let orders: Vec<usize> = vec![8, 10, 12, 13];
    let table = baseline_comparison_table(&config, &orders);
    println!("{}", table.to_ascii());
    match table.write_csv(default_figure_dir(), "baseline_compare") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
