//! Engine iteration-throughput harness: measures iterations/sec of the
//! sequential Adaptive Search inner loop on fixed seeds and writes
//! `BENCH_engine.json`, recording the engine's performance trajectory.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin throughput            # full mode
//! cargo run --release -p cbls-bench --bin throughput -- --quick # CI mode
//! cargo run --release -p cbls-bench --bin throughput -- --out path.json
//! cargo run --release -p cbls-bench --bin throughput -- --only coloring-60x3
//! ```
//!
//! `--only <suite-id>` (repeatable) restricts the run to the named suite
//! benchmarks — a tight loop for perf work on one model: it measures plain
//! throughput plus the batched-vs-scalar probe ratio for the selected ids and
//! skips the executor/recorder/supervision overhead sweeps, the acceptance
//! assertions and the report file.  Ids are the [`Benchmark::id`] strings the
//! full run prints (`costas-14`, `golomb-8`, ...); naming an id outside the
//! throughput suite is an error listing the valid ids.
//!
//! [`Benchmark::id`]: cbls_problems::Benchmark::id

use cbls_bench::throughput::{
    measure, measure_batch_speedup, pre_batching_reference, run_report, throughput_suite,
    ThroughputConfig, BATCH_SPEEDUP_FLOOR, BATCH_SPEEDUP_GUARDED, RECORDER_OVERHEAD_BUDGET,
    SUPERVISION_OVERHEAD_BUDGET,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let only: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--only")
        .filter_map(|(p, _)| args.get(p + 1).cloned())
        .collect();

    let (config, mode) = if quick {
        (ThroughputConfig::quick(), "quick")
    } else {
        (ThroughputConfig::full(), "full")
    };

    if !only.is_empty() {
        run_only(&only, &config);
        return;
    }

    let report = run_report(&config, mode);
    for result in &report.results {
        let speedup = report
            .speedup_vs_reference
            .iter()
            .find(|e| e.id == result.id)
            .map_or_else(String::new, |e| {
                format!("  ({:.2}x vs reference)", e.iters_per_sec)
            });
        println!(
            "{:<24} {:>12.0} iters/sec{}",
            result.id, result.iters_per_sec, speedup
        );
    }

    for entry in &report.batch_speedup {
        println!(
            "{:<24} {:>12.0} iters/sec batched,    {:>12.0} scalar   ({:.2}x)",
            format!("batch:{}", entry.id),
            entry.iters_per_sec_batched,
            entry.iters_per_sec_scalar,
            entry.speedup,
        );
    }

    let overhead = &report.executor_overhead;
    println!(
        "{:<24} {:>12.0} iters/sec with telemetry, {:>12.0} without  ({:+.2}% overhead, {} events)",
        format!("executor:{}", overhead.id),
        overhead.iters_per_sec_events_on,
        overhead.iters_per_sec_events_off,
        100.0 * overhead.overhead_fraction,
        overhead.events,
    );

    for overhead in &report.recorder_overhead {
        println!(
            "{:<24} {:>12.0} iters/sec with recorder,  {:>12.0} without  ({:+.2}% overhead, {} events)",
            format!("recorder:{}", overhead.id),
            overhead.iters_per_sec_events_on,
            overhead.iters_per_sec_events_off,
            100.0 * overhead.overhead_fraction,
            overhead.events,
        );
    }
    for overhead in &report.supervision_overhead {
        println!(
            "{:<24} {:>12.0} iters/sec supervised,    {:>12.0} without  ({:+.2}% overhead, {} heartbeats)",
            format!("supervised:{}", overhead.id),
            overhead.iters_per_sec_events_on,
            overhead.iters_per_sec_events_off,
            100.0 * overhead.overhead_fraction,
            overhead.events,
        );
    }

    let service = &report.service_throughput;
    println!(
        "{:<24} {:>12.2} requests/sec  ({} requests, {} workers, {} solved, direct-match: {})",
        "service:burst",
        service.requests_per_sec,
        service.requests,
        service.workers,
        service.solved,
        service.winners_match_direct,
    );

    // The service acceptance bar, enforced in quick mode too: a concurrent
    // burst of at least 4 requests must all complete, and every winner must
    // be bit-identical to a direct sequential replay of the job's batch —
    // multiplexing may never change results, on any machine.
    assert!(
        service.requests >= 4 && service.completed == service.requests,
        "service burst lost jobs: {} of {} completed",
        service.completed,
        service.requests,
    );
    assert!(
        service.winners_match_direct,
        "service results diverged from direct executor runs"
    );

    // The batched-probe acceptance bar, enforced in quick mode too (the CI
    // throughput step runs --quick on every PR): the two suites the batching
    // work targeted must hold a reproducible speedup over the pre-batching
    // engine.  The floor is far below the recorded full-mode gains, so only a
    // real regression — not scheduler noise on a short run — trips it.
    let pre = pre_batching_reference();
    for id in BATCH_SPEEDUP_GUARDED {
        let fresh = report
            .results
            .iter()
            .find(|r| r.id == id)
            .expect("guarded suite is measured");
        let baseline = pre
            .iter()
            .find(|e| e.id == id)
            .expect("guarded suite has a pre-batching reference");
        let ratio = fresh.iters_per_sec / baseline.iters_per_sec;
        assert!(
            ratio >= BATCH_SPEEDUP_FLOOR,
            "{id}: {:.0} iters/sec is only {ratio:.2}x the pre-batching {:.0} \
             (floor {BATCH_SPEEDUP_FLOOR}x)",
            fresh.iters_per_sec,
            baseline.iters_per_sec,
        );
    }

    if !quick {
        // No suite may fall behind the engine it replaced: every benchmark
        // with a pre-batching reference must hold at least 70% of it.  This
        // is the guard that caught costas-14 regressing 33% when its probe
        // rows were first dispatched through a batch kernel that loses to
        // its scalar probes; the margin absorbs machine-to-machine noise
        // without letting a real dispatch mistake through.
        for baseline in &pre {
            let fresh = report
                .results
                .iter()
                .find(|r| r.id == baseline.id)
                .expect("referenced suite is measured");
            let ratio = fresh.iters_per_sec / baseline.iters_per_sec;
            assert!(
                ratio >= 0.70,
                "{}: {:.0} iters/sec is {ratio:.2}x the pre-batching {:.0} — regression",
                baseline.id,
                fresh.iters_per_sec,
                baseline.iters_per_sec,
            );
        }
        // The observability acceptance bar: attaching the flight recorder may
        // cost at most 5% of throughput on any suite benchmark.  Quick mode
        // skips the assertion — its short runs are dominated by noise.
        for overhead in &report.recorder_overhead {
            assert!(
                overhead.overhead_fraction <= RECORDER_OVERHEAD_BUDGET,
                "flight recorder costs {:.2}% on {} (budget {:.0}%)",
                100.0 * overhead.overhead_fraction,
                overhead.id,
                100.0 * RECORDER_OVERHEAD_BUDGET,
            );
        }
        // The resilience acceptance bar, same shape: fault-free supervised
        // execution may cost at most 5% of throughput on any suite benchmark.
        for overhead in &report.supervision_overhead {
            assert!(
                overhead.overhead_fraction <= SUPERVISION_OVERHEAD_BUDGET,
                "supervision costs {:.2}% on {} (budget {:.0}%)",
                100.0 * overhead.overhead_fraction,
                overhead.id,
                100.0 * SUPERVISION_OVERHEAD_BUDGET,
            );
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(&out, json + "\n") {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--only` path: measure just the selected suite benchmarks (throughput
/// plus batched-vs-scalar ratio), print, write nothing.
fn run_only(only: &[String], config: &ThroughputConfig) {
    let suite = throughput_suite();
    for id in only {
        let Some(benchmark) = suite.iter().find(|b| &b.id() == id) else {
            let valid: Vec<String> = suite.iter().map(|b| b.id()).collect();
            eprintln!("--only {id}: not a throughput suite id; valid: {valid:?}");
            std::process::exit(2);
        };
        let result = measure(benchmark, config);
        let batch = measure_batch_speedup(benchmark, config);
        println!(
            "{:<24} {:>12.0} iters/sec  (batched {:.0}, scalar {:.0}, {:.2}x)",
            result.id,
            result.iters_per_sec,
            batch.iters_per_sec_batched,
            batch.iters_per_sec_scalar,
            batch.speedup,
        );
    }
    eprintln!("--only run: no report written");
}
