//! Engine iteration-throughput harness: measures iterations/sec of the
//! sequential Adaptive Search inner loop on fixed seeds and writes
//! `BENCH_engine.json`, recording the engine's performance trajectory.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin throughput            # full mode
//! cargo run --release -p cbls-bench --bin throughput -- --quick # CI mode
//! cargo run --release -p cbls-bench --bin throughput -- --out path.json
//! ```

use cbls_bench::throughput::{
    run_report, ThroughputConfig, RECORDER_OVERHEAD_BUDGET, SUPERVISION_OVERHEAD_BUDGET,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let (config, mode) = if quick {
        (ThroughputConfig::quick(), "quick")
    } else {
        (ThroughputConfig::full(), "full")
    };

    let report = run_report(&config, mode);
    for result in &report.results {
        let speedup = report
            .speedup_vs_reference
            .iter()
            .find(|e| e.id == result.id)
            .map_or_else(String::new, |e| {
                format!("  ({:.2}x vs reference)", e.iters_per_sec)
            });
        println!(
            "{:<24} {:>12.0} iters/sec{}",
            result.id, result.iters_per_sec, speedup
        );
    }

    let overhead = &report.executor_overhead;
    println!(
        "{:<24} {:>12.0} iters/sec with telemetry, {:>12.0} without  ({:+.2}% overhead, {} events)",
        format!("executor:{}", overhead.id),
        overhead.iters_per_sec_events_on,
        overhead.iters_per_sec_events_off,
        100.0 * overhead.overhead_fraction,
        overhead.events,
    );

    for overhead in &report.recorder_overhead {
        println!(
            "{:<24} {:>12.0} iters/sec with recorder,  {:>12.0} without  ({:+.2}% overhead, {} events)",
            format!("recorder:{}", overhead.id),
            overhead.iters_per_sec_events_on,
            overhead.iters_per_sec_events_off,
            100.0 * overhead.overhead_fraction,
            overhead.events,
        );
    }
    for overhead in &report.supervision_overhead {
        println!(
            "{:<24} {:>12.0} iters/sec supervised,    {:>12.0} without  ({:+.2}% overhead, {} heartbeats)",
            format!("supervised:{}", overhead.id),
            overhead.iters_per_sec_events_on,
            overhead.iters_per_sec_events_off,
            100.0 * overhead.overhead_fraction,
            overhead.events,
        );
    }
    if !quick {
        // The observability acceptance bar: attaching the flight recorder may
        // cost at most 5% of throughput on any suite benchmark.  Quick mode
        // skips the assertion — its short runs are dominated by noise.
        for overhead in &report.recorder_overhead {
            assert!(
                overhead.overhead_fraction <= RECORDER_OVERHEAD_BUDGET,
                "flight recorder costs {:.2}% on {} (budget {:.0}%)",
                100.0 * overhead.overhead_fraction,
                overhead.id,
                100.0 * RECORDER_OVERHEAD_BUDGET,
            );
        }
        // The resilience acceptance bar, same shape: fault-free supervised
        // execution may cost at most 5% of throughput on any suite benchmark.
        for overhead in &report.supervision_overhead {
            assert!(
                overhead.overhead_fraction <= SUPERVISION_OVERHEAD_BUDGET,
                "supervision costs {:.2}% on {} (budget {:.0}%)",
                100.0 * overhead.overhead_fraction,
                overhead.id,
                100.0 * SUPERVISION_OVERHEAD_BUDGET,
            );
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(&out, json + "\n") {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
