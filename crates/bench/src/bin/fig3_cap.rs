//! Figure 3: Costas Array Problem speedups relative to 32 cores (log-log),
//! the paper's "ideal speedup" result.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin fig3_cap            # CAP 13
//! CBLS_CAP_ORDER=14 cargo run --release -p cbls-bench --bin fig3_cap
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::{cap_figure, cap_order_trend_table};
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let mut config = ExperimentConfig::from_env();
    if std::env::var("CBLS_SAMPLES").is_err() {
        // Estimating E[min of p] from an empirical sample needs far more
        // sequential runs than the largest core count swept (256), otherwise
        // the 128/256-core points are biased towards the sample minimum and
        // the curve saturates artificially.
        config.samples = 1500;
    }
    let order = std::env::var("CBLS_CAP_ORDER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(11);
    eprintln!(
        "collecting {} sequential CAP-{order} runs (override with CBLS_SAMPLES / CBLS_CAP_ORDER) ...",
        config.samples
    );

    for platform in [Platform::ha8000(), Platform::grid5000_suno()] {
        match cap_figure(order, &platform, &config) {
            Some((table, result)) => {
                println!("{}", table.to_ascii());
                println!(
                    "CoV of sequential runtime: {:.2} (1.0 = exponential ⇒ linear speedup)",
                    result.distribution.coefficient_of_variation()
                );
                let stem = format!(
                    "fig3_cap_{}",
                    platform.name.to_lowercase().replace([' ', '\'', '(', ')'], "")
                );
                match table.write_csv(default_figure_dir(), &stem) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(e) => eprintln!("could not write CSV: {e}"),
                }
            }
            None => eprintln!(
                "CAP {order} produced no solved sequential runs — increase the budget or lower the order"
            ),
        }
    }

    // The paper's n = 22 sits far out on the "bigger is better" trend; show
    // the approach to the ideal 8x (256 vs 32) over the orders that are
    // affordable sequentially on this machine.
    let trend_config = ExperimentConfig {
        samples: (config.samples / 3).max(200),
        ..config.clone()
    };
    let trend = cap_order_trend_table(&[9, 10, 11], &Platform::ha8000(), &trend_config);
    println!("{}", trend.to_ascii());
    match trend.write_csv(default_figure_dir(), "fig3_cap_order_trend") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
