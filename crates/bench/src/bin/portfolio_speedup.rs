//! Portfolio figure harness: predicted vs empirical multi-walk speedup for a
//! heterogeneous restart-schedule portfolio on the Costas Array Problem,
//! plus the adaptive scheduler's walk allocation over successive solve
//! requests.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin portfolio_speedup
//! CBLS_CAP_ORDER=10 CBLS_WALKS=128 cargo run --release -p cbls-bench --bin portfolio_speedup
//! ```

use cbls_bench::figures::{costas_portfolio, portfolio_figure};
use cbls_bench::ExperimentConfig;
use cbls_perfmodel::report::{default_figure_dir, fmt_f64, Table};
use cbls_portfolio::{AdaptiveScheduler, SimulatedPortfolio};
use cbls_problems::CostasArray;

fn main() {
    let config = ExperimentConfig::from_env();
    let order = std::env::var("CBLS_CAP_ORDER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(9);
    let walks = std::env::var("CBLS_WALKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64);
    eprintln!(
        "replaying a {walks}-walk fixed/luby/geometric portfolio on CAP {order} \
         (override with CBLS_CAP_ORDER / CBLS_WALKS) ..."
    );

    match portfolio_figure(order, walks, &config) {
        Some((table, experiment)) => {
            println!("{}", table.to_ascii());
            println!(
                "success rate: {:.2}; pooled CoV: {:.2} (≈1.0 ⇒ near-linear speedup regime)",
                experiment.simulation.success_rate(),
                experiment
                    .simulation
                    .iteration_distribution()
                    .expect("solved walks exist")
                    .coefficient_of_variation()
            );
            match table.write_csv(default_figure_dir(), "portfolio_speedup") {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write CSV: {e}"),
            }
        }
        None => {
            eprintln!("CAP {order}: no walk solved the instance — lower the order");
            return;
        }
    }

    // Adaptive allocation across successive solve requests: start from the
    // same three prototypes and let the bandit shift walks towards the
    // strategies with the best observed left tail.
    let prototypes = costas_portfolio(order, 3, config.master_seed)
        .members()
        .to_vec();
    let mut scheduler = AdaptiveScheduler::new(prototypes, config.master_seed);
    let rounds = 4;
    let round_walks = walks.clamp(3, 24);
    let mut table = Table::new(
        format!("adaptive scheduler on CAP {order}: walks per strategy over {rounds} rounds"),
        &["round", "fixed", "luby", "geometric", "best_tail_iters"],
    );
    for round in 0..rounds {
        let allocation = scheduler.allocation(round_walks);
        let portfolio = scheduler.next_portfolio(round_walks);
        let sim = SimulatedPortfolio::replay_parallel(&|| CostasArray::new(order), &portfolio);
        scheduler.record_simulated(&sim);
        let best_tail = scheduler
            .records()
            .iter()
            .filter_map(|r| r.tail_iterations())
            .fold(f64::INFINITY, f64::min);
        table.push_row(vec![
            round.to_string(),
            allocation[0].to_string(),
            allocation[1].to_string(),
            allocation[2].to_string(),
            if best_tail.is_finite() {
                fmt_f64(best_tail)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{}", table.to_ascii());
    match table.write_csv(default_figure_dir(), "portfolio_adaptive") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
