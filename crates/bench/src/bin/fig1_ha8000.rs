//! Figure 1: speedups of the CSPLib benchmarks on the HA8000 platform model.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin fig1_ha8000
//! CBLS_SAMPLES=200 cargo run --release -p cbls-bench --bin fig1_ha8000
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::csplib_figure;
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let config = ExperimentConfig::from_env();
    let platform = Platform::ha8000();
    eprintln!(
        "collecting {} sequential runs per benchmark (override with CBLS_SAMPLES) ...",
        config.samples
    );
    let (table, results) = csplib_figure(&platform, &config);
    println!("{}", table.to_ascii());
    for r in &results {
        println!(
            "{:<28} success-rate {:>5.2}  CoV {:>5.2}  local throughput {:>10.0} iters/s",
            r.benchmark.label(),
            r.success_rate,
            r.distribution.coefficient_of_variation(),
            r.local_throughput
        );
    }
    match table.write_csv(default_figure_dir(), "fig1_ha8000") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
