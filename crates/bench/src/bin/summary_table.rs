//! The paper's headline numbers: "speedups of about 30 with 64 cores, 40
//! with 128 cores and more than 50 with 256 cores, and linear speedups on
//! the Costas Array Problem", plus the "bigger benchmark ⇒ better speedup"
//! observation.
//!
//! ```text
//! cargo run --release -p cbls-bench --bin summary_table
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::{size_scaling_table, summary_table};
use cbls_perfmodel::report::default_figure_dir;

fn main() {
    let config = ExperimentConfig::from_env();
    let cap_order = std::env::var("CBLS_CAP_ORDER")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    let summary = summary_table(&config, cap_order);
    println!("{}", summary.to_ascii());
    match summary.write_csv(default_figure_dir(), "summary_headline") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let scaling = size_scaling_table(&config, 256);
    println!("{}", scaling.to_ascii());
    match scaling.write_csv(default_figure_dir(), "summary_size_scaling") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
