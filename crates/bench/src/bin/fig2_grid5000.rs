//! Figure 2: speedups of the CSPLib benchmarks on the Grid'5000 (Suno)
//! platform model, plus the Suno-vs-Helios comparison the paper mentions
//! ("the speedups on the two Grid'5000 platforms are nearly identical").
//!
//! ```text
//! cargo run --release -p cbls-bench --bin fig2_grid5000
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::csplib_figure;
use cbls_perfmodel::report::default_figure_dir;
use cbls_perfmodel::Platform;

fn main() {
    let config = ExperimentConfig::from_env();
    eprintln!(
        "collecting {} sequential runs per benchmark (override with CBLS_SAMPLES) ...",
        config.samples
    );

    let (suno_table, suno) = csplib_figure(&Platform::grid5000_suno(), &config);
    println!("{}", suno_table.to_ascii());
    match suno_table.write_csv(default_figure_dir(), "fig2_grid5000_suno") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    let (helios_table, helios) = csplib_figure(&Platform::grid5000_helios(), &config);
    println!("{}", helios_table.to_ascii());
    match helios_table.write_csv(default_figure_dir(), "fig2_grid5000_helios") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // The paper's remark: Suno and Helios speedups are nearly identical, and
    // perfect-square is the benchmark whose short runs diverge at high core
    // counts.
    println!("Suno vs Helios speedup ratio at the largest common core count:");
    for (s, h) in suno.iter().zip(helios.iter()) {
        let cores = 128;
        if let (Some(a), Some(b)) = (
            s.prediction.speedup_at(cores),
            h.prediction.speedup_at(cores),
        ) {
            println!(
                "  {:<28} {:>6} vs {:>6}  (ratio {:.2})",
                s.benchmark.label(),
                format!("{a:.1}"),
                format!("{b:.1}"),
                a / b
            );
        }
    }
}
