//! CAP sequential-hardness study: "finding big instances of Costas arrays,
//! such as n = 22, takes many hours in sequential computation ... we can now
//! solve n = 22 in about one minute on average with 256 cores on HA8000".
//!
//! ```text
//! cargo run --release -p cbls-bench --bin cap_scaling
//! ```

use cbls_bench::experiment::ExperimentConfig;
use cbls_bench::figures::cap_scaling_table;
use cbls_perfmodel::report::default_figure_dir;

fn main() {
    let config = ExperimentConfig::from_env();
    let orders: Vec<usize> = vec![8, 9, 10, 11, 12];
    let table = cap_scaling_table(&config, &orders, 22);
    println!("{}", table.to_ascii());
    println!(
        "Interpretation: mean iterations grow exponentially with the order, so the\n\
         extrapolated n = 22 instance needs hours of sequential computation, while 256\n\
         independent walks divide the expected time by ≈256 (exponential runtimes),\n\
         landing in the \"about one minute\" regime the paper reports."
    );
    match table.write_csv(default_figure_dir(), "cap_scaling") {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
