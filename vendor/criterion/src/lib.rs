//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`, `BenchmarkId`) with a
//! plain best-of-N timing loop instead of criterion's statistical machinery.
//! Results are printed as one line per benchmark. `CRITERION_STUB_ITERS`
//! overrides the per-sample iteration count (default 10).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for compatibility with generated `criterion_main!` code.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.iters, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub keys iteration count off
    /// `CRITERION_STUB_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub has no measurement budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters.max(1) as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label}: {per_iter:?}/iter over {} iters",
        bencher.iters
    );
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with both a name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id identified by its parameter only.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
