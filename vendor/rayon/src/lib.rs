//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the small slice of rayon's API the workspace uses —
//! `into_par_iter().map(..).collect()` and
//! `par_iter_mut().enumerate().for_each(..)` — on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! available core, so the combinators are genuinely parallel and preserve
//! item order, but there is no work stealing: workloads with very uneven
//! per-item cost will balance worse than under real rayon.

#![forbid(unsafe_code)]

use std::thread;

/// The rayon-compatible trait imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Number of worker threads for a job of `n` items.
fn workers_for(n: usize) -> usize {
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Splits `items` into at most `workers_for(len)` contiguous chunks.
fn chunked<T>(mut items: Vec<T>) -> Vec<Vec<T>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk_size = n.div_ceil(workers_for(n));
    let mut chunks = Vec::new();
    while !items.is_empty() {
        let rest = items.split_off(chunk_size.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    chunks
}

/// Conversion into a parallel iterator, mirroring rayon's entry point.
pub trait IntoParallelIterator: Sized {
    /// The element type.
    type Item;
    /// Collects the source eagerly and exposes parallel combinators.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` (applied in parallel at `collect` time).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        self.map(f).collect::<()>()
    }
}

/// A pending parallel map; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Applies the map across all cores and gathers results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        let chunks = chunked(self.items);
        let mapped: Vec<Vec<R>> = thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        mapped.into_iter().flatten().collect()
    }
}

/// `par_iter_mut` over slices (and `Vec` via deref).
pub trait ParallelSliceMut<T: Send> {
    /// Exposes the slice as a mutable parallel iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// A mutable parallel iterator over a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, item)| f(item));
    }
}

/// An enumerated mutable parallel iterator over a slice.
pub struct ParEnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    /// Runs `f` on every `(index, &mut element)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let n = self.slice.len();
        if n == 0 {
            return;
        }
        let chunk_size = n.div_ceil(workers_for(n));
        let f = &f;
        thread::scope(|s| {
            for (chunk_index, chunk) in self.slice.chunks_mut(chunk_size).enumerate() {
                s.spawn(move || {
                    for (offset, item) in chunk.iter_mut().enumerate() {
                        f((chunk_index * chunk_size + offset, item));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<usize> = (0..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn enumerate_for_each_sees_every_index_once() {
        let mut slots = vec![0u32; 257];
        slots.par_iter_mut().enumerate().for_each(|(i, slot)| {
            *slot = i as u32 + 1;
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, i as u32 + 1);
        }
    }
}
