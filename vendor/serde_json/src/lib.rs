//! Offline stand-in for `serde_json`, backed by the vendored `serde` shim.
//!
//! Provides the tiny surface the workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`], with a [`Error`] type that behaves
//! like the real one for `unwrap()`/`?` purposes.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::__private::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    let parsed = serde::__private::parse(&compact).expect("serializer produced valid JSON");
    let mut out = String::new();
    pretty(&parsed, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                serde::__private::write_escaped(k, out);
                out.push_str(": ");
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        Value::Arr(_) => out.push_str("[]"),
        Value::Obj(_) => out.push_str("{}"),
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(text) => out.push_str(text),
        Value::Str(s) => serde::__private::write_escaped(s, out),
    }
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = serde::__private::parse(s).map_err(|e| Error(e.to_string()))?;
    T::from_json_value(&value).map_err(|e| Error(e.to_string()))
}
