//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a miniature serde implementation (see `vendor/serde`). This crate provides
//! the `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for it. The
//! derives cover exactly what the workspace needs: non-generic structs with
//! named fields, tuple structs, unit structs, and enums whose variants are
//! unit, tuple or struct-like. The JSON shape matches real serde's externally
//! tagged representation, so swapping the real crates back in later does not
//! change any on-disk format.
//!
//! The macros parse the raw `TokenStream` by hand (no `syn`/`quote`, which
//! are equally unavailable offline) and emit the impl by formatting Rust
//! source and re-parsing it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` (direct-to-JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("mini serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` (from a parsed JSON value).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("mini serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(toks: &mut Tokens) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The attribute body: `[...]`.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // Optional restriction: `pub(crate)`, `pub(super)`, ...
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("mini serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("mini serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("mini serde_derive does not support generic types ({name})");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("mini serde_derive: unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("mini serde_derive: unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("mini serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `name: Type, ...` pairs, returning the field names. Types are
/// skipped without interpretation; only top-level commas split fields, with
/// `<`/`>` depth tracked because generic arguments are loose punctuation in a
/// token stream.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("mini serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("mini serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
        fields.push(name);
    }
    fields
}

/// Counts the top-level comma-separated entries of a tuple-struct /
/// tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut pending = false;
    let mut depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if pending {
                        fields += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("mini serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// Renders `s` as a Rust string literal.
fn lit(s: &str) -> String {
    format!("\"{}\"", s.escape_default())
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => "out.push_str(\"null\");".to_string(),
        Kind::Tuple(1) => "::serde::Serialize::write_json(&self.0, out);".to_string(),
        Kind::Tuple(n) => {
            let mut b = String::from("out.push('[');");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');");
                }
                b.push_str(&format!("::serde::Serialize::write_json(&self.{i}, out);"));
            }
            b.push_str("out.push(']');");
            b
        }
        Kind::Named(fields) => named_fields_serialize(fields, "self."),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => out.push_str({}),",
                            lit(&format!("\"{vname}\""))
                        ));
                    }
                    VariantFields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(f0) => {{ out.push_str({}); \
                             ::serde::Serialize::write_json(f0, out); out.push('}}'); }},",
                            lit(&format!("{{\"{vname}\":"))
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut inner =
                            format!("out.push_str({});", lit(&format!("{{\"{vname}\":[")));
                        for (i, b) in binders.iter().enumerate() {
                            if i > 0 {
                                inner.push_str("out.push(',');");
                            }
                            inner.push_str(&format!("::serde::Serialize::write_json({b}, out);"));
                        }
                        inner.push_str("out.push_str(\"]}\");");
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ {inner} }},",
                            binders.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner =
                            format!("out.push_str({});", lit(&format!("{{\"{vname}\":")));
                        inner.push_str(&named_fields_serialize(fields, ""));
                        inner.push_str("out.push('}');");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {inner} }},",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String) {{ {body} }}\n\
         }}"
    )
}

/// Emits the `{{"a":...,"b":...}}` writer for named fields. `access` prefixes
/// each field (`self.` for structs, empty for match binders).
fn named_fields_serialize(fields: &[String], access: &str) -> String {
    let mut b = String::from("out.push('{');");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            b.push_str("out.push(',');");
        }
        b.push_str(&format!("out.push_str({});", lit(&format!("\"{f}\":"))));
        b.push_str(&format!(
            "::serde::Serialize::write_json(&{access}{f}, out);"
        ));
    }
    b.push_str("out.push('}');");
    b
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Unit => format!("let _ = v; Ok({name})"),
        Kind::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
        }
        Kind::Tuple(n) => {
            let mut b = format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::__private::DeError::expected({}, v))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::__private::DeError::expected({}, v)); }}\n",
                lit(&format!("array for tuple struct {name}")),
                lit(&format!("{n} elements for tuple struct {name}")),
            );
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&arr[{i}])?"))
                .collect();
            b.push_str(&format!("Ok({name}({}))", inits.join(", ")));
            b
        }
        Kind::Named(fields) => {
            let mut b = format!(
                "if v.as_object().is_none() {{ return Err(::serde::__private::DeError::expected({}, v)); }}\n",
                lit(&format!("object for struct {name}")),
            );
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(v, {})?", lit(f)))
                .collect();
            b.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
            b
        }
        Kind::Enum(variants) => {
            let expected = lit(&format!("variant of {name}"));
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let key = lit(vname);
                match &v.fields {
                    VariantFields::Unit => {
                        str_arms.push_str(&format!("{key} => Ok({name}::{vname}),"));
                        obj_arms.push_str(&format!("{key} => Ok({name}::{vname}),"));
                    }
                    VariantFields::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "{key} => Ok({name}::{vname}(::serde::Deserialize::from_json_value(val)?)),"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&arr[{i}])?"))
                            .collect();
                        obj_arms.push_str(&format!(
                            "{key} => {{ let arr = val.as_array()\
                             .ok_or_else(|| ::serde::__private::DeError::expected({expected}, v))?; \
                             if arr.len() != {n} {{ return Err(::serde::__private::DeError::expected({expected}, v)); }} \
                             Ok({name}::{vname}({})) }},",
                            inits.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(val, {})?", lit(f)))
                            .collect();
                        obj_arms.push_str(&format!(
                            "{key} => {{ if val.as_object().is_none() {{ \
                             return Err(::serde::__private::DeError::expected({expected}, v)); }} \
                             Ok({name}::{vname} {{ {} }}) }},",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     return match s {{ {str_arms} _ => Err(::serde::__private::DeError::expected({expected}, v)) }};\n\
                 }}\n\
                 if let Some((k, val)) = v.single_entry() {{\n\
                     let _ = val;\n\
                     return match k {{ {obj_arms} _ => Err(::serde::__private::DeError::expected({expected}, v)) }};\n\
                 }}\n\
                 Err(::serde::__private::DeError::expected({expected}, v))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &::serde::__private::Value) \
             -> ::std::result::Result<Self, ::serde::__private::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
