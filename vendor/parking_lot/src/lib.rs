//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's non-poisoning API (`lock()` returns the guard directly).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (a panicked holder does not
    /// invalidate the data for parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
