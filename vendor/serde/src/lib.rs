//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! miniature serde: `Serialize` writes JSON directly into a `String`, and
//! `Deserialize` reads from a parsed [`__private::Value`] tree. The derive
//! macros live in the sibling `serde_derive` stand-in and the
//! `to_string`/`from_str` entry points in the `serde_json` stand-in, so the
//! workspace source compiles unchanged against either this shim or the real
//! crates. Only the JSON data format is supported, which is all the
//! workspace uses.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::time::Duration;

/// A value that can write itself as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// A value that can be reconstructed from a parsed JSON tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a parsed JSON value.
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError>;

    /// Fallback when an object field is absent. Overridden by `Option<T>` so
    /// missing optional fields read back as `None`, as with real serde.
    #[doc(hidden)]
    fn missing_field(name: &str) -> Result<Self, __private::DeError> {
        Err(__private::DeError::new(format!("missing field `{name}`")))
    }
}

/// Support machinery used by the generated derive code and by `serde_json`.
/// Not part of the public API surface the workspace programs against.
pub mod __private {
    use super::Deserialize;
    use std::fmt;

    /// A parsed JSON value. Numbers keep their source text so that 64-bit
    /// integers round-trip without passing through `f64`.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as its literal text.
        Num(String),
        /// A JSON string (unescaped).
        Str(String),
        /// A JSON array.
        Arr(Vec<Value>),
        /// A JSON object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a JSON string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is a JSON array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The key/value pairs, if this is a JSON object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(pairs) => Some(pairs),
                _ => None,
            }
        }

        /// Looks up a key in a JSON object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()
                .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }

        /// For externally tagged enums: the single `{tag: payload}` entry.
        pub fn single_entry(&self) -> Option<(&str, &Value)> {
            match self.as_object() {
                Some([(k, v)]) => Some((k.as_str(), v)),
                _ => None,
            }
        }

        fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "boolean",
                Value::Num(_) => "number",
                Value::Str(_) => "string",
                Value::Arr(_) => "array",
                Value::Obj(_) => "object",
            }
        }
    }

    /// Deserialization error.
    #[derive(Debug, Clone)]
    pub struct DeError(String);

    impl DeError {
        /// An error with a verbatim message.
        pub fn new(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }

        /// "expected X, found Y"-style error.
        pub fn expected(what: &str, found: &Value) -> Self {
            DeError(format!("expected {what}, found {}", found.kind()))
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    /// Reads field `name` out of the object `v`, deferring to
    /// `Deserialize::missing_field` when absent.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(inner) => {
                T::from_json_value(inner).map_err(|e| DeError(format!("field `{name}`: {e}")))
            }
            None => T::missing_field(name),
        }
    }

    /// Appends `s` as a JSON string literal (with escaping) to `out`.
    pub fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a complete JSON document.
    pub fn parse(input: &str) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, byte: u8) -> Result<(), DeError> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(DeError::new(format!(
                    "expected `{}` at byte {}",
                    byte as char, self.pos
                )))
            }
        }

        fn eat_keyword(&mut self, kw: &str) -> Result<(), DeError> {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(())
            } else {
                Err(DeError::new(format!(
                    "invalid literal at byte {}",
                    self.pos
                )))
            }
        }

        fn parse_value(&mut self) -> Result<Value, DeError> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
                Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
                Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
                Some(b'"') => self.parse_string().map(Value::Str),
                Some(b'[') => self.parse_array(),
                Some(b'{') => self.parse_object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
                _ => Err(DeError::new(format!(
                    "unexpected character at byte {}",
                    self.pos
                ))),
            }
        }

        fn parse_number(&mut self) -> Result<Value, DeError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
            if text.is_empty() || text == "-" {
                return Err(DeError::new(format!("invalid number at byte {start}")));
            }
            Ok(Value::Num(text.to_string()))
        }

        fn parse_string(&mut self) -> Result<String, DeError> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(DeError::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                self.pos += 1;
                                let first = self.parse_hex4()?;
                                let code = if (0xD800..0xDC00).contains(&first)
                                    && self.bytes[self.pos..].starts_with(b"\\u")
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    0x10000
                                        + ((first - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF)
                                } else {
                                    first
                                };
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                continue;
                            }
                            _ => return Err(DeError::new("invalid escape sequence")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character (the input is a &str,
                        // so the bytes are valid UTF-8).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .expect("input was a valid &str");
                        let c = rest.chars().next().expect("peeked a byte");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn parse_hex4(&mut self) -> Result<u32, DeError> {
            if self.pos + 4 > self.bytes.len() {
                return Err(DeError::new("truncated \\u escape"));
            }
            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| DeError::new("invalid \\u escape"))?;
            let code =
                u32::from_str_radix(hex, 16).map_err(|_| DeError::new("invalid \\u escape"))?;
            self.pos += 4;
            Ok(code)
        }

        fn parse_array(&mut self) -> Result<Value, DeError> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(DeError::new(format!(
                            "expected `,` or `]` at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, DeError> {
            self.eat(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.eat(b':')?;
                let value = self.parse_value()?;
                pairs.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => {
                        return Err(DeError::new(format!(
                            "expected `,` or `}}` at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
                match v {
                    __private::Value::Num(text) => text.parse::<$t>().or_else(|_| {
                        // Accept integral floats such as `1.0` or `1e3`.
                        let f = text.parse::<f64>().map_err(|_| {
                            __private::DeError::new(format!("invalid number `{text}`"))
                        })?;
                        if f.fract() == 0.0 && f >= <$t>::MIN as f64 && f <= <$t>::MAX as f64 {
                            Ok(f as $t)
                        } else {
                            Err(__private::DeError::new(format!(
                                "number `{text}` out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }),
                    other => Err(__private::DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // Real serde_json also refuses to emit NaN/infinity.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
                match v {
                    __private::Value::Num(text) => text.parse::<$t>().map_err(|_| {
                        __private::DeError::new(format!("invalid number `{text}`"))
                    }),
                    __private::Value::Null => Ok(<$t>::NAN),
                    other => Err(__private::DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        match v {
            __private::Value::Bool(b) => Ok(*b),
            other => Err(__private::DeError::expected("boolean", other)),
        }
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        __private::write_escaped(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        __private::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        match v {
            __private::Value::Str(s) => Ok(s.clone()),
            other => Err(__private::DeError::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        __private::write_escaped(self.encode_utf8(&mut buf), out);
    }
}

impl Deserialize for char {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        match v {
            __private::Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(__private::DeError::expected(
                "single-character string",
                other,
            )),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(inner) => inner.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        match v {
            __private::Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, __private::DeError> {
        Ok(None)
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        match v.as_array() {
            Some(items) => items.iter().map(T::from_json_value).collect(),
            None => Err(__private::DeError::expected("array", v)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        let items: Vec<T> = Deserialize::from_json_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| __private::DeError::new(format!("expected {N} elements, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+) => $n:literal;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| __private::DeError::expected("array", v))?;
                if arr.len() != $n {
                    return Err(__private::DeError::new(format!(
                        "expected {} elements, found {}",
                        $n,
                        arr.len()
                    )));
                }
                Ok(($($t::from_json_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) => 1;
    (A.0, B.1) => 2;
    (A.0, B.1, C.2) => 3;
    (A.0, B.1, C.2, D.3) => 4;
}

impl Serialize for Duration {
    fn write_json(&self, out: &mut String) {
        // Matches real serde's {secs, nanos} encoding of std::time::Duration.
        out.push_str("{\"secs\":");
        self.as_secs().write_json(out);
        out.push_str(",\"nanos\":");
        self.subsec_nanos().write_json(out);
        out.push('}');
    }
}

impl Deserialize for Duration {
    fn from_json_value(v: &__private::Value) -> Result<Self, __private::DeError> {
        let secs: u64 = __private::field(v, "secs")?;
        let nanos: u32 = __private::field(v, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}
