//! # parallel-cbls — parallel constraint-based local search
//!
//! Facade crate of the workspace reproducing *"Performance Analysis of
//! Parallel Constraint-Based Local Search"* (Abreu, Caniou, Codognet, Diaz,
//! Richoux — PPoPP 2012): the Adaptive Search engine, the CSPLib / Costas
//! Array benchmark models, the independent multi-walk parallel runners, the
//! propagation-based baseline and the platform performance models, re-exported
//! under one roof so that applications can depend on a single crate.
//!
//! ```
//! use parallel_cbls::prelude::*;
//!
//! // Solve the 8-queens problem with the Adaptive Search engine.
//! let mut problem = NQueens::new(8);
//! let engine = AdaptiveSearch::tuned_for(&problem);
//! let outcome = engine.solve(&mut problem, &mut default_rng(42));
//! assert!(outcome.solved());
//!
//! // Run 4 independent walks on the Costas Array Problem and keep the winner.
//! let config = MultiWalkConfig::new(4)
//!     .with_search(Benchmark::CostasArray(9).tuned_config());
//! let result = run_threads(&|| CostasArray::new(9), &config);
//! assert!(result.solved());
//! ```
//!
//! See the individual crates for the full APIs:
//!
//! * [`core`] (`cbls-core`) — engine, configuration, statistics;
//! * [`model`] (`cbls-model`) — the declarative modeling layer (violation
//!   terms, the model builder and the generic incremental evaluator);
//! * [`problems`] (`cbls-problems`) — benchmark models and the registry;
//! * [`obs`] (`cbls-obs`) — metrics, flight-recorder tracing and phase
//!   profiling, with Chrome-trace export and the `cbls-trace` CLI;
//! * [`parallel`] (`cbls-parallel`) — multi-walk runners and speedup helpers;
//! * [`portfolio`] (`cbls-portfolio`) — restart schedules, heterogeneous
//!   strategy portfolios and the adaptive walk scheduler;
//! * [`resilience`] (`cbls-resilience`) — supervised execution: stall
//!   watchdog, deterministic retries and the chaos fault-injection harness;
//! * [`service`] (`cbls-service`) — the concurrent solve-job service:
//!   bounded admission, quoted fairness and the versioned progress wire
//!   format;
//! * [`propagation`] (`cbls-propagation`) — the backtracking baseline;
//! * [`perfmodel`] (`cbls-perfmodel`) — runtime distributions and platform
//!   models;
//! * [`rng`] (`as-rng`) — deterministic random streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use as_rng as rng;
pub use cbls_core as core;
pub use cbls_model as model;
pub use cbls_obs as obs;
pub use cbls_parallel as parallel;
pub use cbls_perfmodel as perfmodel;
pub use cbls_portfolio as portfolio;
pub use cbls_problems as problems;
pub use cbls_propagation as propagation;
pub use cbls_resilience as resilience;
pub use cbls_service as service;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use as_rng::{default_rng, DefaultRng, RandomSource, SeedSequence};
    pub use cbls_core::{
        AdaptiveSearch, BestSoFar, Evaluator, EvaluatorFactory, IncrementalProfile, Incumbent,
        SearchConfig, SearchOutcome, SearchStats, StopControl, Summary, TerminationReason,
    };
    pub use cbls_model::{Model, ModelEvaluator, Term};
    pub use cbls_obs::{
        render_summary, FlightRecorder, MetricsRegistry, RecorderConfig, TraceMeta, TraceRecording,
    };
    pub use cbls_parallel::{
        dependent::{run_dependent, run_dependent_on, DependentWalkConfig},
        run_multiwalk, run_rayon, run_threads, select_winner, select_winner_by, DegradationReason,
        DistributionSink, EventLog, EventSink, FaultKind, MultiWalkConfig, MultiWalkResult,
        RayonExecutor, SequentialExecutor, SimulatedMultiWalk, Supervision, ThreadsExecutor,
        WalkBatch, WalkEvent, WalkExecutor, WalkFault, WalkJob, WalkOutcome, WalkSeeds, WinnerRule,
    };
    pub use cbls_perfmodel::{
        DistributionAccumulator, EmpiricalDistribution, Platform, SpeedupModel,
    };
    pub use cbls_portfolio::{
        run_portfolio, run_portfolio_rayon, run_portfolio_threads, AdaptiveScheduler, Portfolio,
        PortfolioMember, PortfolioResult, RestartSchedule, Schedule, SimulatedPortfolio,
    };
    pub use cbls_problems::{
        AllInterval, AlphaCipher, Benchmark, CostasArray, Langford, MagicSquare, NQueens,
        NumberPartitioning, PerfectSquare, SquarePackingInstance,
    };
    pub use cbls_propagation::{
        AllIntervalConstraint, BacktrackingSolver, CostasConstraint, LangfordConstraint,
        QueensConstraint,
    };
    pub use cbls_resilience::{
        ChaosFactory, FaultPlan, FaultSpec, FaultWindow, RetryOutcome, RetryPolicy,
        SupervisedExecution, Supervisor, WatchdogConfig,
    };
    pub use cbls_service::{
        AdmissionError, CompletedJob, Fairness, JobEvent, JobHandle, JobResult, ProgressFrame,
        ServiceConfig, SolveRequest, SolveService, WIRE_SCHEMA,
    };
}
